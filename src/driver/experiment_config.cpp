#include "driver/experiment_config.hpp"

#include <stdexcept>

#include "common/numfmt.hpp"
#include "common/sha256.hpp"
#include "serve/json.hpp"
#include "topofile/topofile.hpp"

namespace ownsim {
namespace {

using serve::Json;

/// Bump on any change to simulated results or the stored payload layout.
constexpr char kCodeVersionTag[] = "ownsim-2026.08-serve2";

const char* to_string(fault::EventKind kind) {
  switch (kind) {
    case fault::EventKind::kFlap: return "flap";
    case fault::EventKind::kKill: return "kill";
    case fault::EventKind::kTokenLoss: return "token_loss";
  }
  throw std::logic_error("bad EventKind");
}

fault::EventKind parse_event_kind(const std::string& name) {
  if (name == "flap") return fault::EventKind::kFlap;
  if (name == "kill") return fault::EventKind::kKill;
  if (name == "token_loss") return fault::EventKind::kTokenLoss;
  throw std::invalid_argument("bad fault event kind: " + name);
}

/// Parses "src:dst@cycle" (OWN-256 cluster pair, rerouted online) or
/// "link:IDX@cycle" (point-to-point link index on any topology, no reroute)
/// into a kill event.
fault::Event parse_kill(const std::string& s) {
  fault::Event event;
  event.kind = fault::EventKind::kKill;
  const std::size_t colon = s.find(':');
  const std::size_t at = s.find('@');
  if (colon == std::string::npos || at == std::string::npos || at < colon) {
    throw std::invalid_argument("fault_kill: want src:dst@cycle or link:IDX@cycle");
  }
  if (s.rfind("link:", 0) == 0) {
    event.link = std::stoi(s.substr(colon + 1, at - colon - 1));
  } else {
    event.src_cluster = std::stoi(s.substr(0, colon));
    event.dst_cluster = std::stoi(s.substr(colon + 1, at - colon - 1));
  }
  event.at = std::stoll(s.substr(at + 1));
  return event;
}

/// Parses "medium@cycle:recovery" (recovery in cycles, or "never").
fault::Event parse_token_loss(const std::string& s) {
  fault::Event event;
  event.kind = fault::EventKind::kTokenLoss;
  const std::size_t at = s.find('@');
  const std::size_t colon = at == std::string::npos ? at : s.find(':', at);
  if (at == std::string::npos || colon == std::string::npos) {
    throw std::invalid_argument("fault_token_loss: want medium@cycle:recovery");
  }
  event.medium = std::stoi(s.substr(0, at));
  event.at = std::stoll(s.substr(at + 1, colon - at - 1));
  const std::string recovery = s.substr(colon + 1);
  event.recovery =
      recovery == "never" ? kNeverCycle : std::stoll(recovery);
  return event;
}

Json event_to_json(const fault::Event& event) {
  Json::Object object;
  object["at"] = Json(event.at);
  object["down_cycles"] = Json(event.down_cycles);
  object["dst_cluster"] = Json(event.dst_cluster);
  object["kind"] = Json(to_string(event.kind));
  object["link"] = Json(event.link);
  object["medium"] = Json(event.medium);
  object["recovery"] = Json(event.recovery);
  object["src_cluster"] = Json(event.src_cluster);
  return Json(std::move(object));
}

fault::Event event_from_json(const Json& json) {
  fault::Event event;
  for (const auto& [key, value] : json.as_object()) {
    if (key == "at") {
      event.at = value.as_int();
    } else if (key == "down_cycles") {
      event.down_cycles = value.as_int();
    } else if (key == "dst_cluster") {
      event.dst_cluster = static_cast<int>(value.as_int());
    } else if (key == "kind") {
      event.kind = parse_event_kind(value.as_string());
    } else if (key == "link") {
      event.link = static_cast<int>(value.as_int());
    } else if (key == "medium") {
      event.medium = static_cast<int>(value.as_int());
    } else if (key == "recovery") {
      event.recovery = value.as_int();
    } else if (key == "src_cluster") {
      event.src_cluster = static_cast<int>(value.as_int());
    } else {
      throw std::invalid_argument("canonical config: unknown event key: " +
                                  key);
    }
  }
  return event;
}

Scenario parse_scenario(const std::string& name) {
  if (name == "ideal") return Scenario::kIdeal;
  if (name == "conservative") return Scenario::kConservative;
  throw std::invalid_argument("bad scenario: " + name);
}

const char* scenario_name(Scenario scenario) {
  return scenario == Scenario::kConservative ? "conservative" : "ideal";
}

KernelMode parse_kernel(const std::string& name) {
  if (name == "activity") return KernelMode::kActivity;
  if (name == "lockstep") return KernelMode::kLockstep;
  if (name == "parallel") return KernelMode::kParallel;
  throw std::invalid_argument(
      "bad kernel (want activity|lockstep|parallel): " + name);
}

}  // namespace

ExperimentConfig parse_experiment_config(const Config& args) {
  ExperimentConfig config;
  const std::string topology = args.get_string("topology", "own");
  if (topology.rfind("file:", 0) == 0) {
    // topology=file:PATH — load the file body NOW so the cache key, the
    // deadlock check and the simulated network all come from the same
    // bytes (a later mutation of the file cannot alias a cached result).
    config.topology = TopologyKind::kFile;
    config.options.topofile_path = topology.substr(5);
    config.options.topofile_text =
        topofile::read_topofile(config.options.topofile_path);
    // Default the core count to the file's node count; an explicit cores=
    // that disagrees still fails loudly in the loader.
    config.options.num_cores =
        topofile::probe_topofile(config.options.topofile_text).num_nodes;
  } else {
    config.topology = parse_topology(topology);
    if (config.topology == TopologyKind::kFile) {
      throw std::invalid_argument("topology=file needs a path: file:PATH");
    }
  }
  config.pattern = parse_pattern(args.get_string("pattern", "UN"));
  config.options.num_cores =
      static_cast<int>(args.get_int("cores", config.options.num_cores));
  config.rate = args.get_double("rate", 0.004);
  const std::int64_t own_config = args.get_int("config", 4);
  if (own_config < 1 || own_config > 4) {
    throw std::invalid_argument("config: want a Table IV row 1..4");
  }
  config.own_config = static_cast<OwnConfig>(own_config);
  config.scenario = parse_scenario(args.get_string("scenario", "ideal"));
  config.phases.warmup = args.get_int("warmup", 1500);
  config.phases.measure = args.get_int("measure", 4000);
  config.phases.drain_limit = args.get_int("drain", 30000);
  config.injector.packet_flits =
      static_cast<int>(args.get_int("packet_flits", 4));
  config.injector.master_seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));

  // Topology sizing knobs (defaults reproduce the paper's setup).
  config.options.concentration = static_cast<int>(
      args.get_int("concentration", config.options.concentration));
  config.options.num_vcs =
      static_cast<int>(args.get_int("vcs", config.options.num_vcs));
  config.options.buffer_depth = static_cast<int>(
      args.get_int("buffer_depth", config.options.buffer_depth));
  config.options.clock_ghz =
      args.get_double("clock_ghz", config.options.clock_ghz);
  config.options.ideal_arbitration =
      args.get_bool("ideal_arbitration", config.options.ideal_arbitration);
  config.options.cmesh_o1turn =
      args.get_bool("o1turn", config.options.cmesh_o1turn);
  if (args.contains("flit_bits")) {
    config.options.flit_bits = static_cast<int>(args.require_int("flit_bits"));
    config.injector.flit_bits =
        static_cast<std::uint32_t>(config.options.flit_bits);
  }

  if (args.contains("kernel")) {
    config.kernel = parse_kernel(args.require_string("kernel"));
  }
  // Parallel-kernel execution knobs; result-neutral, so NOT part of the
  // canonical config JSON below (same cache entry for any thread count).
  config.threads = static_cast<int>(args.get_int("threads", 0));
  config.partitions = static_cast<int>(args.get_int("partitions", 0));
  if (config.threads < 0) throw std::invalid_argument("threads: want >= 0");
  if (config.partitions < 0) {
    throw std::invalid_argument("partitions: want >= 0");
  }

  config.fault.enabled = args.get_bool("fault", false);
  config.fault.seed = static_cast<std::uint64_t>(
      args.get_int("fault_seed",
                   static_cast<std::int64_t>(config.injector.master_seed)));
  config.fault.ber = args.get_double("fault_ber", -1.0);
  config.fault.margin = Decibels{args.get_double("fault_margin_db", 2.5)};
  config.fault.random_flaps =
      static_cast<int>(args.get_int("fault_flaps", 0));
  config.fault.flap_down_cycles = args.get_int("fault_flap_down", 200);
  config.fault.horizon = args.get_int("fault_horizon", 4000);
  if (args.contains("fault_kill")) {
    config.fault.events.push_back(
        parse_kill(args.require_string("fault_kill")));
  }
  if (args.contains("fault_token_loss")) {
    config.fault.events.push_back(
        parse_token_loss(args.require_string("fault_token_loss")));
  }
  const Cycle watchdog_window = args.get_int("watchdog", 0);
  config.fault.watchdog = watchdog_window > 0;
  config.fault.watchdog_window =
      config.fault.watchdog ? watchdog_window : Cycle{20000};

  adapt::AdaptConfig& a = config.adapt;
  a.enabled = args.get_bool("adapt", false);
  a.react = args.get_bool("adapt_react", a.react);
  a.refresh = args.get_int("adapt_refresh", a.refresh);
  a.variation_seed = static_cast<std::uint64_t>(args.get_int(
      "adapt_seed", static_cast<std::int64_t>(a.variation_seed)));
  a.variation_sigma_db = args.get_double("adapt_sigma_db", a.variation_sigma_db);
  a.ring_sigma_c = args.get_double("adapt_ring_sigma_c", a.ring_sigma_c);
  a.snr_required =
      Decibels{args.get_double("adapt_snr_required_db", a.snr_required.db())};
  a.base_margin =
      Decibels{args.get_double("adapt_margin_db", a.base_margin.db())};
  a.temp_coeff_db_per_c =
      args.get_double("adapt_temp_coeff", a.temp_coeff_db_per_c);
  a.thermal_alpha = args.get_double("adapt_alpha", a.thermal_alpha);
  a.thermal_iterations = static_cast<int>(
      args.get_int("adapt_iterations", a.thermal_iterations));
  a.backoff_enter_db = args.get_double("adapt_backoff_enter", a.backoff_enter_db);
  a.backoff_exit_db = args.get_double("adapt_backoff_exit", a.backoff_exit_db);
  a.backoff_gain_db = args.get_double("adapt_backoff_gain", a.backoff_gain_db);
  a.max_backoff =
      static_cast<int>(args.get_int("adapt_max_backoff", a.max_backoff));
  a.sustain = static_cast<int>(args.get_int("adapt_sustain", a.sustain));
  a.realloc_enter_db =
      args.get_double("adapt_realloc_enter", a.realloc_enter_db);
  a.realloc_exit_db = args.get_double("adapt_realloc_exit", a.realloc_exit_db);
  a.trim_uw_per_c = args.get_double("adapt_trim_uw", a.trim_uw_per_c);
  return config;
}

std::string canonical_config_json(const ExperimentConfig& config) {
  Json::Object o;
  o["topology"] = Json(to_string(config.topology));
  if (config.topology == TopologyKind::kFile) {
    // The cache key must cover the file *content* (not its path — the same
    // file moved must hit, the same path mutated must miss) and the
    // generator version (regenerated routes re-key unchanged bytes).
    std::string sha = config.topofile_sha256;
    if (sha.empty()) {
      if (config.options.topofile_text.empty()) {
        throw std::logic_error(
            "canonical config: file topology without loaded text or sha256");
      }
      Sha256 hasher;
      hasher.update(config.options.topofile_text);
      sha = hasher.hex_digest();
    }
    o["topofile.sha256"] = Json(std::move(sha));
    o["topofile.generator"] = Json(topofile::kTopofileGeneratorVersion);
  }
  o["pattern"] = Json(to_string(config.pattern));
  o["rate"] = Json(config.rate);
  o["own_config"] = Json(static_cast<int>(config.own_config));
  o["scenario"] = Json(scenario_name(config.scenario));

  o["options.num_cores"] = Json(config.options.num_cores);
  o["options.concentration"] = Json(config.options.concentration);
  o["options.num_vcs"] = Json(config.options.num_vcs);
  o["options.buffer_depth"] = Json(config.options.buffer_depth);
  o["options.max_packet_flits"] = Json(config.options.max_packet_flits);
  o["options.clock_ghz"] = Json(config.options.clock_ghz);
  o["options.flit_bits"] = Json(config.options.flit_bits);
  o["options.electrical_cpf"] = Json(config.options.electrical_cpf);
  o["options.photonic_cpf"] = Json(config.options.photonic_cpf);
  o["options.wireless_cpf"] = Json(config.options.wireless_cpf);
  o["options.ideal_arbitration"] = Json(config.options.ideal_arbitration);
  o["options.cmesh_o1turn"] = Json(config.options.cmesh_o1turn);

  o["phases.warmup"] = Json(config.phases.warmup);
  o["phases.measure"] = Json(config.phases.measure);
  o["phases.drain_limit"] = Json(config.phases.drain_limit);

  o["injector.packet_flits"] = Json(config.injector.packet_flits);
  o["injector.flit_bits"] =
      Json(static_cast<std::int64_t>(config.injector.flit_bits));
  o["injector.master_seed"] =
      Json(static_cast<std::int64_t>(config.injector.master_seed));

  const PowerParams& p = config.power;
  o["power.buffer_write_pj_per_bit"] = Json(p.buffer_write_pj_per_bit);
  o["power.buffer_read_pj_per_bit"] = Json(p.buffer_read_pj_per_bit);
  o["power.xbar_base_pj_per_bit"] = Json(p.xbar_base_pj_per_bit);
  o["power.xbar_radix_slope_pj_per_bit"] = Json(p.xbar_radix_slope_pj_per_bit);
  o["power.alloc_pj_per_op"] = Json(p.alloc_pj_per_op);
  o["power.leak_mw_per_input_port"] = Json(p.leak_mw_per_input_port);
  o["power.leak_mw_per_output_port"] = Json(p.leak_mw_per_output_port);
  o["power.leak_uw_per_crosspoint"] = Json(p.leak_uw_per_crosspoint);
  o["power.wire_pj_per_bit_mm"] = Json(p.wire_pj_per_bit_mm);
  o["power.photonic_dynamic_pj_per_bit"] = Json(p.photonic_dynamic_pj_per_bit);
  o["power.lambda_rate_gbps"] = Json(p.lambda_rate_gbps);
  o["power.ring_tuning_uw"] = Json(p.ring_tuning_uw);
  o["power.legacy_wireless_pj_per_bit"] = Json(p.legacy_wireless_pj_per_bit);
  o["power.wireless_static_mw_per_channel"] =
      Json(p.wireless_static_mw_per_channel);

  const adapt::AdaptConfig& a = config.adapt;
  o["adapt.enabled"] = Json(a.enabled);
  o["adapt.react"] = Json(a.react);
  o["adapt.refresh"] = Json(a.refresh);
  o["adapt.variation_seed"] = Json(static_cast<std::int64_t>(a.variation_seed));
  o["adapt.variation_sigma_db"] = Json(a.variation_sigma_db);
  o["adapt.ring_sigma_c"] = Json(a.ring_sigma_c);
  o["adapt.snr_required_db"] = Json(a.snr_required.db());
  o["adapt.base_margin_db"] = Json(a.base_margin.db());
  o["adapt.temp_coeff_db_per_c"] = Json(a.temp_coeff_db_per_c);
  o["adapt.thermal_alpha"] = Json(a.thermal_alpha);
  o["adapt.thermal_iterations"] = Json(a.thermal_iterations);
  o["adapt.backoff_enter_db"] = Json(a.backoff_enter_db);
  o["adapt.backoff_exit_db"] = Json(a.backoff_exit_db);
  o["adapt.backoff_gain_db"] = Json(a.backoff_gain_db);
  o["adapt.max_backoff"] = Json(a.max_backoff);
  o["adapt.sustain"] = Json(a.sustain);
  o["adapt.realloc_enter_db"] = Json(a.realloc_enter_db);
  o["adapt.realloc_exit_db"] = Json(a.realloc_exit_db);
  o["adapt.trim_uw_per_c"] = Json(a.trim_uw_per_c);

  const fault::CampaignConfig& f = config.fault;
  o["fault.enabled"] = Json(f.enabled);
  o["fault.seed"] = Json(static_cast<std::int64_t>(f.seed));
  o["fault.ber"] = Json(f.ber);
  o["fault.snr_required_db"] = Json(f.snr_required.db());
  o["fault.margin_db"] = Json(f.margin.db());
  o["fault.ack_timeout"] = Json(f.ack_timeout);
  o["fault.max_backoff_exp"] = Json(f.max_backoff_exp);
  o["fault.max_attempts"] = Json(f.max_attempts);
  o["fault.detect_timeouts"] = Json(f.detect_timeouts);
  o["fault.random_flaps"] = Json(f.random_flaps);
  o["fault.flap_down_cycles"] = Json(f.flap_down_cycles);
  o["fault.horizon"] = Json(f.horizon);
  o["fault.watchdog"] = Json(f.watchdog);
  o["fault.watchdog_window"] = Json(f.watchdog_window);
  Json::Array events;
  events.reserve(f.events.size());
  for (const fault::Event& event : f.events) {
    events.push_back(event_to_json(event));
  }
  o["fault.events"] = Json(std::move(events));

  return Json(std::move(o)).dump();
}

ExperimentConfig experiment_config_from_canonical_json(std::string_view json) {
  const Json parsed = Json::parse(json);
  ExperimentConfig c;
  for (const auto& [key, v] : parsed.as_object()) {
    if (key == "topology") {
      c.topology = parse_topology(v.as_string());
    } else if (key == "pattern") {
      c.pattern = parse_pattern(v.as_string());
    } else if (key == "rate") {
      c.rate = v.as_double();
    } else if (key == "own_config") {
      c.own_config = static_cast<OwnConfig>(v.as_int());
    } else if (key == "scenario") {
      c.scenario = parse_scenario(v.as_string());
    } else if (key == "options.num_cores") {
      c.options.num_cores = static_cast<int>(v.as_int());
    } else if (key == "options.concentration") {
      c.options.concentration = static_cast<int>(v.as_int());
    } else if (key == "options.num_vcs") {
      c.options.num_vcs = static_cast<int>(v.as_int());
    } else if (key == "options.buffer_depth") {
      c.options.buffer_depth = static_cast<int>(v.as_int());
    } else if (key == "options.max_packet_flits") {
      c.options.max_packet_flits = static_cast<int>(v.as_int());
    } else if (key == "options.clock_ghz") {
      c.options.clock_ghz = v.as_double();
    } else if (key == "options.flit_bits") {
      c.options.flit_bits = static_cast<int>(v.as_int());
    } else if (key == "options.electrical_cpf") {
      c.options.electrical_cpf = static_cast<int>(v.as_int());
    } else if (key == "options.photonic_cpf") {
      c.options.photonic_cpf = static_cast<int>(v.as_int());
    } else if (key == "options.wireless_cpf") {
      c.options.wireless_cpf = static_cast<int>(v.as_int());
    } else if (key == "options.ideal_arbitration") {
      c.options.ideal_arbitration = v.as_bool();
    } else if (key == "options.cmesh_o1turn") {
      c.options.cmesh_o1turn = v.as_bool();
    } else if (key == "phases.warmup") {
      c.phases.warmup = v.as_int();
    } else if (key == "phases.measure") {
      c.phases.measure = v.as_int();
    } else if (key == "phases.drain_limit") {
      c.phases.drain_limit = v.as_int();
    } else if (key == "injector.packet_flits") {
      c.injector.packet_flits = static_cast<int>(v.as_int());
    } else if (key == "injector.flit_bits") {
      c.injector.flit_bits = static_cast<std::uint32_t>(v.as_int());
    } else if (key == "injector.master_seed") {
      c.injector.master_seed = static_cast<std::uint64_t>(v.as_int());
    } else if (key == "power.buffer_write_pj_per_bit") {
      c.power.buffer_write_pj_per_bit = v.as_double();
    } else if (key == "power.buffer_read_pj_per_bit") {
      c.power.buffer_read_pj_per_bit = v.as_double();
    } else if (key == "power.xbar_base_pj_per_bit") {
      c.power.xbar_base_pj_per_bit = v.as_double();
    } else if (key == "power.xbar_radix_slope_pj_per_bit") {
      c.power.xbar_radix_slope_pj_per_bit = v.as_double();
    } else if (key == "power.alloc_pj_per_op") {
      c.power.alloc_pj_per_op = v.as_double();
    } else if (key == "power.leak_mw_per_input_port") {
      c.power.leak_mw_per_input_port = v.as_double();
    } else if (key == "power.leak_mw_per_output_port") {
      c.power.leak_mw_per_output_port = v.as_double();
    } else if (key == "power.leak_uw_per_crosspoint") {
      c.power.leak_uw_per_crosspoint = v.as_double();
    } else if (key == "power.wire_pj_per_bit_mm") {
      c.power.wire_pj_per_bit_mm = v.as_double();
    } else if (key == "power.photonic_dynamic_pj_per_bit") {
      c.power.photonic_dynamic_pj_per_bit = v.as_double();
    } else if (key == "power.lambda_rate_gbps") {
      c.power.lambda_rate_gbps = v.as_double();
    } else if (key == "power.ring_tuning_uw") {
      c.power.ring_tuning_uw = v.as_double();
    } else if (key == "power.legacy_wireless_pj_per_bit") {
      c.power.legacy_wireless_pj_per_bit = v.as_double();
    } else if (key == "power.wireless_static_mw_per_channel") {
      c.power.wireless_static_mw_per_channel = v.as_double();
    } else if (key == "adapt.enabled") {
      c.adapt.enabled = v.as_bool();
    } else if (key == "adapt.react") {
      c.adapt.react = v.as_bool();
    } else if (key == "adapt.refresh") {
      c.adapt.refresh = v.as_int();
    } else if (key == "adapt.variation_seed") {
      c.adapt.variation_seed = static_cast<std::uint64_t>(v.as_int());
    } else if (key == "adapt.variation_sigma_db") {
      c.adapt.variation_sigma_db = v.as_double();
    } else if (key == "adapt.ring_sigma_c") {
      c.adapt.ring_sigma_c = v.as_double();
    } else if (key == "adapt.snr_required_db") {
      c.adapt.snr_required = Decibels{v.as_double()};
    } else if (key == "adapt.base_margin_db") {
      c.adapt.base_margin = Decibels{v.as_double()};
    } else if (key == "adapt.temp_coeff_db_per_c") {
      c.adapt.temp_coeff_db_per_c = v.as_double();
    } else if (key == "adapt.thermal_alpha") {
      c.adapt.thermal_alpha = v.as_double();
    } else if (key == "adapt.thermal_iterations") {
      c.adapt.thermal_iterations = static_cast<int>(v.as_int());
    } else if (key == "adapt.backoff_enter_db") {
      c.adapt.backoff_enter_db = v.as_double();
    } else if (key == "adapt.backoff_exit_db") {
      c.adapt.backoff_exit_db = v.as_double();
    } else if (key == "adapt.backoff_gain_db") {
      c.adapt.backoff_gain_db = v.as_double();
    } else if (key == "adapt.max_backoff") {
      c.adapt.max_backoff = static_cast<int>(v.as_int());
    } else if (key == "adapt.sustain") {
      c.adapt.sustain = static_cast<int>(v.as_int());
    } else if (key == "adapt.realloc_enter_db") {
      c.adapt.realloc_enter_db = v.as_double();
    } else if (key == "adapt.realloc_exit_db") {
      c.adapt.realloc_exit_db = v.as_double();
    } else if (key == "adapt.trim_uw_per_c") {
      c.adapt.trim_uw_per_c = v.as_double();
    } else if (key == "fault.enabled") {
      c.fault.enabled = v.as_bool();
    } else if (key == "fault.seed") {
      c.fault.seed = static_cast<std::uint64_t>(v.as_int());
    } else if (key == "fault.ber") {
      c.fault.ber = v.as_double();
    } else if (key == "fault.snr_required_db") {
      c.fault.snr_required = Decibels{v.as_double()};
    } else if (key == "fault.margin_db") {
      c.fault.margin = Decibels{v.as_double()};
    } else if (key == "fault.ack_timeout") {
      c.fault.ack_timeout = static_cast<int>(v.as_int());
    } else if (key == "fault.max_backoff_exp") {
      c.fault.max_backoff_exp = static_cast<int>(v.as_int());
    } else if (key == "fault.max_attempts") {
      c.fault.max_attempts = static_cast<int>(v.as_int());
    } else if (key == "fault.detect_timeouts") {
      c.fault.detect_timeouts = static_cast<int>(v.as_int());
    } else if (key == "fault.random_flaps") {
      c.fault.random_flaps = static_cast<int>(v.as_int());
    } else if (key == "fault.flap_down_cycles") {
      c.fault.flap_down_cycles = v.as_int();
    } else if (key == "fault.horizon") {
      c.fault.horizon = v.as_int();
    } else if (key == "fault.watchdog") {
      c.fault.watchdog = v.as_bool();
    } else if (key == "fault.watchdog_window") {
      c.fault.watchdog_window = v.as_int();
    } else if (key == "fault.events") {
      for (const Json& event : v.as_array()) {
        c.fault.events.push_back(event_from_json(event));
      }
    } else if (key == "topofile.sha256") {
      // The file body itself is not in the canonical JSON; carry its hash so
      // re-keying the reconstructed config reproduces the original key.
      c.topofile_sha256 = v.as_string();
    } else if (key == "topofile.generator") {
      if (v.as_string() != topofile::kTopofileGeneratorVersion) {
        throw std::invalid_argument(
            "canonical config: topology file was keyed by generator '" +
            v.as_string() + "', this build is '" +
            topofile::kTopofileGeneratorVersion + "'");
      }
    } else {
      throw std::invalid_argument("canonical config: unknown key: " + key);
    }
  }
  return c;
}

std::string code_version() {
  std::string version = kCodeVersionTag;
#if OWNSIM_OBS_ENABLED
  version += "+obs";
#else
  version += "+noobs";
#endif
  return version;
}

std::string experiment_cache_key(const ExperimentConfig& config,
                                 std::string_view version) {
  Sha256 hasher;
  hasher.update(canonical_config_json(config));
  hasher.update("\n");
  hasher.update(version.empty() ? code_version() : std::string(version));
  return hasher.hex_digest();
}

}  // namespace ownsim

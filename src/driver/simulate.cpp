#include "driver/simulate.hpp"

#include <algorithm>
#include <sstream>

#include "topology/own_fault.hpp"

namespace ownsim {

std::optional<ChannelEnergyModel> own_channel_energy(TopologyKind topology,
                                                     int num_cores,
                                                     OwnConfig config,
                                                     Scenario scenario) {
  if (topology != TopologyKind::kOwn) return std::nullopt;
  return ChannelEnergyModel(config, scenario, num_cores == 1024 ? 16 : 12);
}

NetworkFactory make_network_factory(TopologyKind topology,
                                    TopologyOptions options) {
  return [topology, options] {
    return std::make_unique<Network>(build_topology(topology, options));
  };
}

NetworkSpec build_experiment_spec(const ExperimentConfig& config) {
  if (config.fault.enabled && config.topology == TopologyKind::kOwn &&
      config.options.num_cores == 256) {
    // Campaign-capable OWN-256: the healthy floorplan (no pre-declared
    // faults) built with the degraded 5-class route scheme, so a mid-run
    // persistent failure can be rerouted online without a rebuild.
    TopologyOptions options = config.options;
    options.num_vcs = std::max(options.num_vcs, 5);
    return build_own256_faulted(options, FaultSet{});
  }
  return build_topology(config.topology, config.options);
}

std::unique_ptr<fault::FaultCampaign> make_campaign(
    Network& network, const ExperimentConfig& config) {
  if (!config.fault.enabled) return nullptr;
  return std::make_unique<fault::FaultCampaign>(&network, config.fault);
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  Network network(build_experiment_spec(config));
  if (config.kernel.has_value()) network.engine().set_mode(*config.kernel);

  TrafficPattern pattern(config.pattern, config.options.num_cores);
  Injector::Params injector_params = config.injector;
  injector_params.rate = config.rate;
  Injector injector(&network, pattern, injector_params);
  network.engine().add(&injector);

  std::unique_ptr<fault::FaultCampaign> campaign =
      make_campaign(network, config);
  exec::CancellationToken token;
  if (campaign != nullptr) {
    campaign->attach();
    if (campaign->watchdog() != nullptr) token = campaign->watchdog()->token();
  }

  ExperimentResult result;
  result.run = run_load_point(network, injector, config.phases, token);
  if (campaign != nullptr) {
    result.fault = campaign->totals();
    result.watchdog_tripped = campaign->watchdog_tripped();
  }

  EnergyModel energy(config.power,
                     own_channel_energy(config.topology,
                                        config.options.num_cores,
                                        config.own_config, config.scenario));
  result.power = energy.compute(network, config.options.clock_ghz);
  result.energy_per_packet_pj =
      energy.energy_per_packet_pj(network, config.options.clock_ghz);

  std::ostringstream name;
  name << to_string(config.topology) << '-' << config.options.num_cores << '/'
       << to_string(config.pattern);
  if (config.topology == TopologyKind::kOwn) {
    name << '/' << to_string(config.own_config) << '/'
         << to_string(config.scenario);
  }
  result.name = name.str();
  return result;
}

}  // namespace ownsim

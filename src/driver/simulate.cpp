#include "driver/simulate.hpp"

#include <sstream>

namespace ownsim {

std::optional<ChannelEnergyModel> own_channel_energy(TopologyKind topology,
                                                     int num_cores,
                                                     OwnConfig config,
                                                     Scenario scenario) {
  if (topology != TopologyKind::kOwn) return std::nullopt;
  return ChannelEnergyModel(config, scenario, num_cores == 1024 ? 16 : 12);
}

NetworkFactory make_network_factory(TopologyKind topology,
                                    TopologyOptions options) {
  return [topology, options] {
    return std::make_unique<Network>(build_topology(topology, options));
  };
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  Network network(build_topology(config.topology, config.options));
  if (config.kernel.has_value()) network.engine().set_mode(*config.kernel);

  TrafficPattern pattern(config.pattern, config.options.num_cores);
  Injector::Params injector_params = config.injector;
  injector_params.rate = config.rate;
  Injector injector(&network, pattern, injector_params);
  network.engine().add(&injector);

  ExperimentResult result;
  result.run = run_load_point(network, injector, config.phases);

  EnergyModel energy(config.power,
                     own_channel_energy(config.topology,
                                        config.options.num_cores,
                                        config.own_config, config.scenario));
  result.power = energy.compute(network, config.options.clock_ghz);
  result.energy_per_packet_pj =
      energy.energy_per_packet_pj(network, config.options.clock_ghz);

  std::ostringstream name;
  name << to_string(config.topology) << '-' << config.options.num_cores << '/'
       << to_string(config.pattern);
  if (config.topology == TopologyKind::kOwn) {
    name << '/' << to_string(config.own_config) << '/'
         << to_string(config.scenario);
  }
  result.name = name.str();
  return result;
}

}  // namespace ownsim

#include "driver/simulate.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "adapt/controller.hpp"
#include "common/numfmt.hpp"
#include "exec/thread_pool.hpp"
#include "metrics/report.hpp"
#include "serve/json.hpp"
#include "topofile/topofile.hpp"
#include "topology/own_fault.hpp"

namespace ownsim {

std::optional<ChannelEnergyModel> own_channel_energy(TopologyKind topology,
                                                     int num_cores,
                                                     OwnConfig config,
                                                     Scenario scenario) {
  if (topology != TopologyKind::kOwn) return std::nullopt;
  return ChannelEnergyModel(config, scenario, num_cores == 1024 ? 16 : 12);
}

NetworkFactory make_network_factory(TopologyKind topology,
                                    TopologyOptions options) {
  return [topology, options] {
    return std::make_unique<Network>(build_topology(topology, options));
  };
}

NetworkSpec build_experiment_spec(const ExperimentConfig& config) {
  if ((config.fault.enabled || config.adapt.enabled) &&
      config.topology == TopologyKind::kOwn &&
      config.options.num_cores == 256) {
    // Campaign-capable OWN-256: the healthy floorplan (no pre-declared
    // faults) built with the degraded 5-class route scheme, so a mid-run
    // persistent failure can be rerouted online without a rebuild.
    TopologyOptions options = config.options;
    options.num_vcs = std::max(options.num_vcs, 5);
    return build_own256_faulted(options, FaultSet{});
  }
  return build_topology(config.topology, config.options);
}

std::unique_ptr<fault::FaultCampaign> make_campaign(
    Network& network, const ExperimentConfig& config) {
  if (!config.fault.enabled) return nullptr;
  return std::make_unique<fault::FaultCampaign>(&network, config.fault);
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  return run_experiment(config, RunHooks{});
}

ExperimentResult run_experiment(const ExperimentConfig& config,
                                const RunHooks& hooks) {
  Network network(build_experiment_spec(config));
  if (config.kernel.has_value()) network.engine().set_mode(*config.kernel);
  // kernel=parallel (or OWNSIM_PDES=1) needs a partition plan; install or
  // replace one when the config carries explicit threads/partitions knobs.
  // Thread and partition counts never change a simulated result (§5i).
  if (network.engine().mode() == KernelMode::kParallel &&
      (!network.engine().parallel_configured() || config.threads > 0 ||
       config.partitions > 0)) {
    const unsigned threads = config.threads > 0
                                 ? static_cast<unsigned>(config.threads)
                                 : exec::default_threads();
    network.configure_parallel(threads, config.partitions);
  }

  TrafficPattern pattern(config.pattern, config.options.num_cores);
  Injector::Params injector_params = config.injector;
  injector_params.rate = config.rate;
  Injector injector(&network, pattern, injector_params);
  network.engine().add(&injector);

  // File topologies report (and meter energy) as the topology they emulate,
  // so an exported OWN-256 file is byte-identical to the hand-built one.
  const TopologyKind reported =
      config.topology == TopologyKind::kFile
          ? topofile::topofile_reporting_kind(config.options)
          : config.topology;
  std::optional<ChannelEnergyModel> channel_energy = own_channel_energy(
      reported, config.options.num_cores, config.own_config, config.scenario);

  std::unique_ptr<fault::FaultCampaign> campaign =
      make_campaign(network, config);
  exec::CancellationToken token = hooks.cancel;
  if (campaign != nullptr) {
    campaign->attach();
    if (campaign->watchdog() != nullptr) {
      token = exec::CancellationToken::any_of(
          {hooks.cancel, campaign->watchdog()->token()});
    }
  }
  // The adaptation controller registers after the campaign (and after every
  // network component): both mutate the network at cycle boundaries, and a
  // fixed registration order is part of the bit-identity argument (§5k).
  std::unique_ptr<adapt::AdaptController> adapt_ctl;
  if (config.adapt.enabled) {
    adapt_ctl = std::make_unique<adapt::AdaptController>(
        &network, config.adapt, config.power,
        channel_energy.has_value() ? &*channel_energy : nullptr,
        config.options.clock_ghz);
    adapt_ctl->attach(campaign != nullptr ? &campaign->protocol() : nullptr);
  }
  if (hooks.before_run) hooks.before_run(network);

  ExperimentResult result;
  result.run = run_load_point(network, injector, config.phases, token,
                              hooks.progress ? &hooks.progress : nullptr);
  if (campaign != nullptr) {
    result.fault = campaign->totals();
    result.watchdog_tripped = campaign->watchdog_tripped();
  }
  if (adapt_ctl != nullptr) {
    result.adapt = adapt_ctl->totals();
    if (campaign == nullptr) {
      // Adapt-only runs still corrupt flits through the live-BER path; fold
      // the link-layer totals in so the result reflects them (the campaign
      // already does this through its own totals()).
      for (std::size_t i = 0; i < network.num_network_channels(); ++i) {
        const LinkFaultCounters& fc =
            network.network_channel(i).fault_counters();
        result.fault.crc_errors += fc.crc_errors;
        result.fault.retransmissions += fc.retransmissions;
      }
      for (std::size_t m = 0; m < network.num_media(); ++m) {
        const MediumCounters& mc = network.medium(m).counters();
        result.fault.crc_errors += mc.crc_errors;
        result.fault.retransmissions += mc.retransmissions;
        result.fault.token_recoveries += mc.token_recoveries;
      }
    }
  }

  // A run cancelled before its first slice has no elapsed cycles, and the
  // energy model (rightly) refuses a never-simulated network. Cancelled
  // results are partial either way — power stays zeroed in that case.
  if (!result.run.cancelled || result.run.cycles_simulated > 0) {
    EnergyModel energy(config.power, channel_energy);
    const double trim_w =
        adapt_ctl != nullptr ? adapt_ctl->trim_avg_w() : 0.0;
    result.power = energy.compute(network, config.options.clock_ghz, trim_w);
    result.energy_per_packet_pj = energy.energy_per_packet_pj(
        network, config.options.clock_ghz, trim_w);
  }

  result.counters.reserve(network.obs().size());
  network.obs().for_each(
      [&result](const std::string& name, std::int64_t value) {
        result.counters.emplace_back(name, value);
      });

  std::ostringstream name;
  name << to_string(reported) << '-' << config.options.num_cores << '/'
       << to_string(config.pattern);
  if (reported == TopologyKind::kOwn) {
    name << '/' << to_string(config.own_config) << '/'
         << to_string(config.scenario);
  }
  result.name = name.str();
  if (hooks.after_run) hooks.after_run(network, result);
  return result;
}

std::string experiment_result_json(const ExperimentResult& result) {
  // Keys in sorted order at every level (see append_run_result_canonical_json
  // for why: parse -> dump through the serve JSON layer must be a no-op).
  std::string out;
  out += "{";
  if (result.adapt.enabled) {
    // Emitted only when the adaptation loop ran: adapt=0 results keep
    // today's byte layout exactly.
    out += "\"adapt\":{\"backoffs\":";
    out += format_int(result.adapt.backoffs);
    out += ",\"enabled\":true,\"min_margin_db\":";
    out += format_double(result.adapt.min_margin_db);
    out += ",\"peak_temp_c\":";
    out += format_double(result.adapt.peak_temp_c);
    out += ",\"reallocations\":";
    out += format_int(result.adapt.reallocations);
    out += ",\"refreshes\":";
    out += format_int(result.adapt.refreshes);
    out += ",\"trim_avg_mw\":";
    out += format_double(result.adapt.trim_avg_mw);
    out += "},";
  }
  out += "\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : result.counters) {
    if (!first) out += ",";
    first = false;
    serve::append_json_string(out, name);
    out += ":";
    out += format_int(value);
  }
  out += "},\"energy_per_packet_pj\":";
  out += format_double(result.energy_per_packet_pj);
  out += ",\"fault\":{\"crc_errors\":";
  out += format_int(result.fault.crc_errors);
  out += ",\"flows_degraded\":";
  out += format_int(result.fault.flows_degraded);
  out += ",\"retransmissions\":";
  out += format_int(result.fault.retransmissions);
  out += ",\"token_recoveries\":";
  out += format_int(result.fault.token_recoveries);
  out += ",\"watchdog_trips\":";
  out += format_int(result.fault.watchdog_trips);
  out += "},\"name\":";
  serve::append_json_string(out, result.name);
  out += ",\"power\":{\"electrical_link_w\":";
  out += format_double(result.power.electrical_link_w);
  out += ",\"photonic_laser_w\":";
  out += format_double(result.power.photonic_laser_w);
  out += ",\"photonic_link_w\":";
  out += format_double(result.power.photonic_link_w);
  out += ",\"router_dynamic_w\":";
  out += format_double(result.power.router_dynamic_w);
  out += ",\"router_static_w\":";
  out += format_double(result.power.router_static_w);
  out += ",\"total_w\":";
  out += format_double(result.power.total_w());
  out += ",\"wireless_link_w\":";
  out += format_double(result.power.wireless_link_w);
  out += ",\"wireless_static_w\":";
  out += format_double(result.power.wireless_static_w);
  out += "},\"run\":";
  append_run_result_canonical_json(out, result.run);
  out += ",\"watchdog_tripped\":";
  out += result.watchdog_tripped ? "true" : "false";
  out += "}";
  return out;
}

}  // namespace ownsim

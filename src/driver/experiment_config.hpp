// ExperimentConfig ingestion and canonicalization — the one config -> run ->
// report path shared by ownsim_cli and the ownsim_serve daemon.
//
// Two representations of an experiment point live here:
//
//   * Flat key=value settings (`Config`), the CLI / config-file / daemon
//     request vocabulary: `parse_experiment_config` turns them into an
//     ExperimentConfig with full validation. The CLI and the daemon both
//     call it, so a config line means the same thing submitted over the
//     socket as typed on the command line.
//
//   * Canonical JSON (`canonical_config_json`): a byte-stable, full-fidelity
//     dump of every field that can influence a simulated result — sorted
//     keys, shortest-round-trip number forms (common/numfmt). This is the
//     cache-key input of the serve result store: two configs hash equal iff
//     their canonical JSON is byte-equal. Deliberately EXCLUDED from the
//     canonical form (DESIGN.md §5g):
//       - `kernel` (and the parallel-kernel `threads`/`partitions` knobs):
//         activity, lockstep and parallel are bit-identical by contract
//         (§5e/§5i, enforced by bench_kernel and the pdes-parity CI job),
//         so all kernels — at any thread/partition count — share one cache
//         entry;
//       - `injector.rate`: always overridden by the top-level `rate`;
//       - `fault.diagnostics`: an output stream, not configuration.
#pragma once

#include <string>
#include <string_view>

#include "common/config.hpp"
#include "driver/simulate.hpp"

namespace ownsim {

/// Builds an ExperimentConfig from flat key=value settings (the ownsim_cli
/// vocabulary: topology/cores/pattern/rate/config/scenario/warmup/measure/
/// drain/packet_flits/seed/kernel/vcs/buffer_depth/concentration/clock_ghz/
/// ideal_arbitration/o1turn and the fault_* campaign knobs). Unknown keys
/// are ignored (callers own their extra keys, e.g. the CLI's `report=`).
/// Throws std::invalid_argument / std::runtime_error on malformed values.
ExperimentConfig parse_experiment_config(const Config& args);

/// Canonical JSON of `config` (see file comment): sorted keys, numfmt
/// number forms. Serializing the same config always yields the same bytes.
std::string canonical_config_json(const ExperimentConfig& config);

/// Inverse of `canonical_config_json`. Unknown keys throw (schema drift must
/// not be silently dropped — the string is a cache-key input). Fields the
/// canonical form excludes (kernel, threads, partitions, injector.rate) come
/// back default.
ExperimentConfig experiment_config_from_canonical_json(std::string_view json);

/// Version tag of the simulated-result-producing code. Bump the suffix
/// whenever a change alters any simulated result or the byte layout of the
/// stored result payload — cache exactness (hash(config, seed, version) ->
/// one result) holds only while this names the code that wrote the bytes.
/// The returned string also encodes whether obs counters are compiled in,
/// since the payload embeds the counter snapshot.
std::string code_version();

/// Content address of one experiment point: SHA-256 over the canonical
/// config JSON and `version` (defaults to `code_version()`). The seed is
/// part of the config, so it is part of the key.
std::string experiment_cache_key(const ExperimentConfig& config,
                                 std::string_view version = {});

}  // namespace ownsim

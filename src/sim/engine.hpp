// Cycle-driven simulation kernel.
//
// Holds a registry of non-owning `Clocked*` components and advances them in
// lockstep: eval all, then commit all, then now()+1. Components are owned by
// whoever built them (normally `Network`).
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "sim/clocked.hpp"

namespace ownsim {

class Engine {
 public:
  /// Registers a component. Must not be null; pointer must outlive the engine.
  void add(Clocked* component);

  /// Current cycle (number of completed steps).
  Cycle now() const { return now_; }

  /// Advances exactly one cycle.
  void step();

  /// Advances `cycles` cycles.
  void run(Cycle cycles);

  /// Steps until `done()` returns true (checked after each cycle) or
  /// `max_cycles` elapse. Returns true if `done()` fired.
  bool run_until(const std::function<bool()>& done, Cycle max_cycles);

  std::size_t num_components() const { return components_.size(); }

 private:
  std::vector<Clocked*> components_;
  Cycle now_ = 0;
};

}  // namespace ownsim

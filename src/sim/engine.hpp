// Cycle-driven simulation kernel.
//
// Holds a registry of non-owning `Clocked*` components and advances them in
// two phases per cycle. Components are owned by whoever built them (normally
// `Network`). Two kernels share the registry (see DESIGN.md §5e):
//
//  * kActivity (default) — activity-driven: only components in the active
//    set are evaluated/committed; a wheel of future wakeups re-activates
//    dormant components, and `run`/`run_until` fast-forward `now_` across
//    globally idle gaps (bounded by the next scheduled wakeup). Bit-identical
//    to lockstep by the quiescence contract in sim/clocked.hpp.
//  * kLockstep — the original tick-everything loop: eval all, commit all,
//    now()+1. Escape hatch + differential-testing baseline; selected with
//    OWNSIM_LOCKSTEP=1 or `set_mode`.
//  * kParallel — activity semantics with the network partitioned across
//    worker threads (sim/parallel.hpp, DESIGN.md §5i). Behaves exactly like
//    kActivity until `configure_parallel` installs a partition plan;
//    selected with OWNSIM_PDES=1 or `set_mode`. Bit-identical to both other
//    kernels for any partition count and thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.hpp"
#include "sim/clocked.hpp"

namespace ownsim {

enum class KernelMode {
  kActivity,  ///< active set + wake wheel + idle skip-ahead
  kLockstep,  ///< eval/commit every component every cycle
  kParallel,  ///< activity semantics, partitions evaluated on worker threads
};

class ParallelRuntime;
struct ParallelEvalCtx;
struct ParallelLane;
struct ParallelPlan;

class Engine {
 public:
  /// Mode defaults to kActivity unless the environment overrides it:
  /// OWNSIM_PDES=1 selects kParallel, OWNSIM_LOCKSTEP=1 wins over both.
  Engine();
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers a component. Must not be null, must not already be registered;
  /// pointer must outlive the engine. Newly added components start active
  /// (they are evaluated from the next cycle, exactly like lockstep) and
  /// retire on their own once `is_idle()`.
  void add(Clocked* component);

  /// Selects the kernel. Only allowed before the first cycle (now() == 0):
  /// the kernels agree on component state only from a cold start. Switching
  /// away from kParallel tears down any configured partition runtime.
  void set_mode(KernelMode mode);
  KernelMode mode() const { return mode_; }

  /// Installs a partition plan and spins up `threads` workers for the
  /// kParallel kernel (requires mode() == kParallel and now() == 0; the plan
  /// must cover the components registered so far — later additions fall into
  /// the serial lane). Replaces any previous plan. The worker count is
  /// clamped to [1, plan.num_partitions].
  void configure_parallel(ParallelPlan plan, unsigned threads);
  bool parallel_configured() const { return runtime_ != nullptr; }

  /// Current cycle (number of completed steps).
  Cycle now() const { return now_; }

  /// Advances exactly one cycle (never skips ahead, in either mode).
  void step();

  /// Advances `cycles` cycles; in activity mode, globally idle stretches are
  /// skipped in one jump to the next wakeup (or to the end of the budget).
  void run(Cycle cycles);

  /// Steps until `done()` returns true or `max_cycles` elapse. Returns true
  /// if `done()` fired. The predicate is checked after every *active* cycle
  /// and once per idle gap (state cannot change while nothing is awake), so
  /// it must be a pure function of component state — not of `now()` — for
  /// the check to be exact in activity mode. Lockstep checks every cycle.
  bool run_until(const std::function<bool()>& done, Cycle max_cycles);

  std::size_t num_components() const { return components_.size(); }

  /// Components currently in the active set (diagnostics/tests).
  std::size_t num_active() const;

  /// Earliest pending wakeup, or kNeverCycle when the wheel is empty.
  Cycle next_wake() const;

  /// Kernel statistics (observational; reset never, monotone within a run).
  struct Stats {
    std::int64_t cycles_stepped = 0;  ///< cycles with at least one eval
    std::int64_t cycles_skipped = 0;  ///< cycles fast-forwarded while idle
    std::int64_t evals = 0;           ///< component evals performed
    std::int64_t wakes = 0;           ///< wakeups posted to the wheel
  };
  /// Aggregated over the partition lanes when a parallel plan is configured.
  /// Safe to call between cycles and from the serial phase (workers parked).
  Stats stats() const;

 private:
  friend class Clocked;
  friend class ParallelRuntime;

  /// Posts a wakeup for `component` at cycle `at` (clamped: never before the
  /// next cycle the engine will execute). Called via Clocked::request_wake.
  void wake(Clocked* component, Cycle at);

  /// Marks `component` for commit this cycle even if dormant. Called via
  /// Clocked::request_commit (only meaningful during an eval phase).
  void commit_request(Clocked* component);

  void step_lockstep();
  void step_activity();

  /// True when no component is active and no wakeup is due at `now_`
  /// (then nothing can change until `next_wake()`).
  bool globally_idle() const {
    return mode_ != KernelMode::kLockstep && active_.empty() &&
           (wheel_.empty() || wheel_.top().first > now_);
  }

  /// Jumps `now_` to the next wakeup, clamped to `deadline`.
  void skip_to_next_event(Cycle deadline);

  // --- Parallel kernel (engine_parallel.cpp). Once `configure_parallel`
  // installed a runtime, the per-lane structures ARE the scheduler state;
  // the global `active_`/`wheel_` above stay empty until teardown.
  void teardown_parallel();
  void distribute_to_lanes();
  void collect_from_lanes();
  void parallel_step();
  void parallel_run(Cycle cycles);
  bool parallel_run_until(const std::function<bool()>& done, Cycle max_cycles);
  bool parallel_globally_idle() const;
  void parallel_skip(Cycle deadline);
  void parallel_worker(ParallelRuntime* rt, int slot);
  void activate_lane(ParallelRuntime& rt, ParallelLane& lane, Cycle now);
  void run_lane_front(ParallelRuntime& rt, int lane_index, Cycle now);
  void run_lane_wave2(ParallelRuntime& rt, int lane_index, Cycle now);
  void finish_lane(ParallelRuntime& rt, int lane_index, Cycle now);
  void parallel_wake(ParallelEvalCtx& ctx, int id, Cycle effective);
  void parallel_commit_request(ParallelEvalCtx& ctx, int id);
  void lane_wheel_push(int id, Cycle effective);
  void lane_commit_extra_push(int id);
  void lane_add_active(int id);

  std::vector<Clocked*> components_;
  Cycle now_ = 0;
  KernelMode mode_ = KernelMode::kActivity;

  // Activity-kernel state. `active_` is kept sorted by registration id so a
  // partial sweep preserves lockstep's relative eval order (determinism).
  // The flag vectors use unsigned char, not bool: under the parallel kernel
  // distinct component ids are flipped from distinct threads, which needs
  // distinct memory locations (vector<bool> packs bits).
  std::vector<int> active_;
  std::vector<unsigned char> is_active_;  ///< per component id
  using WheelEntry = std::pair<Cycle, int>;  // (cycle, component id)
  std::priority_queue<WheelEntry, std::vector<WheelEntry>,
                      std::greater<WheelEntry>>
      wheel_;
  std::vector<int> commit_extras_;  ///< dormant ids to commit this cycle
  std::vector<unsigned char> commit_requested_;  ///< per id, cleared per cycle
  std::vector<int> newly_active_;  ///< scratch for the activation merge
  bool stepping_ = false;  ///< inside step(): same-cycle wakes defer to now+1

  Stats stats_;
  std::unique_ptr<ParallelRuntime> runtime_;
};

}  // namespace ownsim

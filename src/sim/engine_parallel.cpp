// Parallel (partitioned) kernel: the waved epoch schedule of DESIGN.md §5i.
//
// One epoch == one cycle (the minimum cross-component pipe latency, i.e. the
// conservative lookahead bound). Each cycle runs as:
//
//   barrier A   coordinator published {kStep, now}
//     workers:  per lane — activate due wakeups, eval wave-1 actives
//   barrier B
//     workers:  per lane — eval wave-2 actives
//   barrier C
//     coordinator: activate + eval the serial lane (id order), exclusive —
//     the driver extras may mutate any component (fault injection, route
//     patches) exactly as they do after the full sweep in the sequential
//     kernel, because their ids are the highest in the registry.
//   barrier D
//     everyone:  per lane — merge boundary staging buffers (wakes + commit
//     requests raised for this lane during the waves), commit actives and
//     extras, retire idle components, promote non-idle extras.
//   barrier E   coordinator advances now_.
//
// Determinism: within a lane everything runs in ascending id order; across
// lanes the only shared state is (a) the flag bytes of per-lane component
// ids (disjoint), (b) the staging buffers (single writer during waves,
// single reader at commit, ordered by the barriers), and (c) component state
// whose cross-wave access pattern the §5i pair argument shows to be
// conflict-free. Wheels order on (cycle, id), so merge order is immaterial.
#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "sim/engine.hpp"
#include "sim/parallel.hpp"

namespace ownsim {

namespace detail {
thread_local ParallelEvalCtx* tl_parallel_ctx = nullptr;
}  // namespace detail

void ParallelPlan::validate(std::size_t num_components) const {
  if (partition.size() != wave.size()) {
    throw std::invalid_argument(
        "ParallelPlan: partition/wave size mismatch");
  }
  if (partition.size() > num_components) {
    throw std::invalid_argument(
        "ParallelPlan: plan covers more components than registered");
  }
  if (num_partitions < 1) {
    throw std::invalid_argument("ParallelPlan: need >= 1 partition");
  }
  for (std::size_t i = 0; i < partition.size(); ++i) {
    if (partition[i] < 0 || partition[i] >= num_partitions) {
      throw std::invalid_argument("ParallelPlan: partition out of range");
    }
    if (wave[i] != 1 && wave[i] != 2) {
      throw std::invalid_argument("ParallelPlan: wave must be 1 or 2");
    }
  }
}

namespace {
unsigned clamp_workers(unsigned threads, int partitions) {
  const unsigned cap = partitions > 0 ? static_cast<unsigned>(partitions) : 1u;
  if (threads < 1u) threads = 1u;
  return std::min(threads, cap);
}
}  // namespace

ParallelRuntime::ParallelRuntime(Engine* engine, ParallelPlan plan,
                                 unsigned threads)
    : engine_(engine),
      plan_(std::move(plan)),
      lanes_(static_cast<std::size_t>(plan_.num_partitions) + 1),
      worker_errors_(clamp_workers(threads, plan_.num_partitions)),
      barrier_(static_cast<int>(worker_errors_.size()) + 1),
      pool_(static_cast<unsigned>(worker_errors_.size())) {
  for (ParallelLane& lane : lanes_) {
    lane.wake_out.resize(lanes_.size());
    lane.commit_out.resize(lanes_.size());
  }
  workers_.reserve(worker_errors_.size());
  for (int slot = 0; slot < static_cast<int>(worker_errors_.size()); ++slot) {
    workers_.push_back(
        pool_.submit([this, slot] { engine_->parallel_worker(this, slot); }));
  }
}

ParallelRuntime::~ParallelRuntime() {
  command_.store(Command::kExit, std::memory_order_relaxed);
  barrier_.arrive_and_wait();  // release the workers with the exit command
  barrier_.arrive_and_wait();  // exit acknowledgement
  for (std::future<void>& worker : workers_) worker.get();
  // pool_ (last member) joins the worker threads before barrier_ dies.
}

Engine::~Engine() = default;

void Engine::configure_parallel(ParallelPlan plan, unsigned threads) {
  if (now_ != 0) {
    throw std::logic_error(
        "Engine::configure_parallel: only from a cold start (now()==0)");
  }
  if (mode_ != KernelMode::kParallel) {
    throw std::logic_error(
        "Engine::configure_parallel: set_mode(KernelMode::kParallel) first");
  }
  plan.validate(components_.size());
  if (runtime_ != nullptr) teardown_parallel();
  runtime_ = std::make_unique<ParallelRuntime>(this, std::move(plan), threads);
  distribute_to_lanes();
}

void Engine::teardown_parallel() {
  collect_from_lanes();
  runtime_.reset();
}

void Engine::distribute_to_lanes() {
  ParallelRuntime& rt = *runtime_;
  for (const int id : active_) {
    ParallelLane& lane = rt.lanes_[static_cast<std::size_t>(rt.lane_of(id))];
    (rt.wave_of(id) == 1 ? lane.active1 : lane.active2).push_back(id);
  }
  active_.clear();
  while (!wheel_.empty()) {
    const WheelEntry entry = wheel_.top();
    wheel_.pop();
    rt.lanes_[static_cast<std::size_t>(rt.lane_of(entry.second))].wheel.push(
        entry);
  }
  for (const int id : commit_extras_) {
    rt.lanes_[static_cast<std::size_t>(rt.lane_of(id))]
        .commit_extras.push_back(id);
  }
  commit_extras_.clear();
}

void Engine::collect_from_lanes() {
  ParallelRuntime& rt = *runtime_;
  for (ParallelLane& lane : rt.lanes_) {
    active_.insert(active_.end(), lane.active1.begin(), lane.active1.end());
    active_.insert(active_.end(), lane.active2.begin(), lane.active2.end());
    lane.active1.clear();
    lane.active2.clear();
    while (!lane.wheel.empty()) {
      wheel_.push(lane.wheel.top());
      lane.wheel.pop();
    }
    commit_extras_.insert(commit_extras_.end(), lane.commit_extras.begin(),
                          lane.commit_extras.end());
    lane.commit_extras.clear();
    stats_.evals += lane.evals;
    stats_.wakes += lane.wakes;
    lane.evals = 0;
    lane.wakes = 0;
  }
  std::sort(active_.begin(), active_.end());
}

std::size_t Engine::num_active() const {
  if (runtime_ == nullptr) return active_.size();
  std::size_t total = 0;
  for (const ParallelLane& lane : runtime_->lanes_) {
    total += lane.active1.size() + lane.active2.size();
  }
  return total;
}

Cycle Engine::next_wake() const {
  if (runtime_ == nullptr) {
    return wheel_.empty() ? kNeverCycle : wheel_.top().first;
  }
  Cycle next = kNeverCycle;
  for (const ParallelLane& lane : runtime_->lanes_) {
    if (!lane.wheel.empty()) next = std::min(next, lane.wheel.top().first);
  }
  return next;
}

Engine::Stats Engine::stats() const {
  Stats total = stats_;
  if (runtime_ != nullptr) {
    for (const ParallelLane& lane : runtime_->lanes_) {
      total.evals += lane.evals;
      total.wakes += lane.wakes;
    }
  }
  return total;
}

void Engine::lane_wheel_push(int id, Cycle effective) {
  ParallelRuntime& rt = *runtime_;
  rt.lanes_[static_cast<std::size_t>(rt.lane_of(id))].wheel.push(
      {effective, id});
}

void Engine::lane_commit_extra_push(int id) {
  ParallelRuntime& rt = *runtime_;
  rt.lanes_[static_cast<std::size_t>(rt.lane_of(id))].commit_extras.push_back(
      id);
}

void Engine::lane_add_active(int id) {
  ParallelRuntime& rt = *runtime_;
  ParallelLane& lane = rt.lanes_[static_cast<std::size_t>(rt.lane_of(id))];
  (rt.wave_of(id) == 1 ? lane.active1 : lane.active2).push_back(id);
}

void Engine::parallel_wake(ParallelEvalCtx& ctx, int id, Cycle effective) {
  ParallelRuntime& rt = *runtime_;
  const int dst = rt.lane_of(id);
  if (dst == ctx.lane_index) {
    ctx.lane->wheel.push({effective, id});
    ++ctx.lane->wakes;
  } else {
    // Boundary wake: staged per (source lane, destination lane) edge and
    // merged into the owner's wheel at the commit phase. The wheel orders on
    // (cycle, id), so merge order cannot perturb the schedule.
    ctx.lane->wake_out[static_cast<std::size_t>(dst)].push_back(
        {effective, id});
  }
}

void Engine::parallel_commit_request(ParallelEvalCtx& ctx, int id) {
  ParallelRuntime& rt = *runtime_;
  const int dst = rt.lane_of(id);
  if (dst == ctx.lane_index) {
    if (is_active_[static_cast<std::size_t>(id)] != 0 ||
        commit_requested_[static_cast<std::size_t>(id)] != 0) {
      return;
    }
    commit_requested_[static_cast<std::size_t>(id)] = 1;
    ctx.lane->commit_extras.push_back(id);
  } else {
    // Requests for a foreign component are staged unconditionally; the
    // owning lane deduplicates at merge time (two lanes may legitimately
    // request the same channel in one cycle — flit from one side, credit
    // from the other — and the flag byte belongs to the owner).
    ctx.lane->commit_out[static_cast<std::size_t>(dst)].push_back(id);
  }
}

void Engine::activate_lane(ParallelRuntime& rt, ParallelLane& lane,
                           Cycle now) {
  while (!lane.wheel.empty() && lane.wheel.top().first <= now) {
    const int id = lane.wheel.top().second;
    lane.wheel.pop();
    if (is_active_[static_cast<std::size_t>(id)] == 0) {
      is_active_[static_cast<std::size_t>(id)] = 1;
      (rt.wave_of(id) == 1 ? lane.newly1 : lane.newly2).push_back(id);
    }
  }
  if (!lane.newly1.empty()) {
    lane.active1.insert(lane.active1.end(), lane.newly1.begin(),
                        lane.newly1.end());
    std::sort(lane.active1.begin(), lane.active1.end());
    lane.newly1.clear();
  }
  if (!lane.newly2.empty()) {
    lane.active2.insert(lane.active2.end(), lane.newly2.begin(),
                        lane.newly2.end());
    std::sort(lane.active2.begin(), lane.active2.end());
    lane.newly2.clear();
  }
}

void Engine::run_lane_front(ParallelRuntime& rt, int lane_index, Cycle now) {
  ParallelLane& lane = rt.lanes_[static_cast<std::size_t>(lane_index)];
  activate_lane(rt, lane, now);
  ParallelEvalCtx ctx{this, &lane, lane_index, now};
  detail::tl_parallel_ctx = &ctx;
  for (const int id : lane.active1) {
    components_[static_cast<std::size_t>(id)]->eval(now);
  }
  lane.evals += static_cast<std::int64_t>(lane.active1.size());
  detail::tl_parallel_ctx = nullptr;
}

void Engine::run_lane_wave2(ParallelRuntime& rt, int lane_index, Cycle now) {
  ParallelLane& lane = rt.lanes_[static_cast<std::size_t>(lane_index)];
  ParallelEvalCtx ctx{this, &lane, lane_index, now};
  detail::tl_parallel_ctx = &ctx;
  for (const int id : lane.active2) {
    components_[static_cast<std::size_t>(id)]->eval(now);
  }
  lane.evals += static_cast<std::int64_t>(lane.active2.size());
  detail::tl_parallel_ctx = nullptr;
}

void Engine::finish_lane(ParallelRuntime& rt, int lane_index, Cycle now) {
  ParallelLane& lane = rt.lanes_[static_cast<std::size_t>(lane_index)];
  // Merge the boundary staging buffers published for this lane. Commit
  // requests deduplicate here against the owner's flag bytes, matching the
  // sequential kernel's enqueue-time dedup (set membership is identical;
  // only commit order within the set differs, and commits are
  // component-local).
  for (ParallelLane& src : rt.lanes_) {
    auto& wakes = src.wake_out[static_cast<std::size_t>(lane_index)];
    for (const ParallelLane::WakeEntry& entry : wakes) lane.wheel.push(entry);
    lane.wakes += static_cast<std::int64_t>(wakes.size());
    wakes.clear();
    auto& requests = src.commit_out[static_cast<std::size_t>(lane_index)];
    for (const int id : requests) {
      if (is_active_[static_cast<std::size_t>(id)] != 0 ||
          commit_requested_[static_cast<std::size_t>(id)] != 0) {
        continue;
      }
      commit_requested_[static_cast<std::size_t>(id)] = 1;
      lane.commit_extras.push_back(id);
    }
    requests.clear();
  }
  ParallelEvalCtx ctx{this, &lane, lane_index, now};
  detail::tl_parallel_ctx = &ctx;
  for (const int id : lane.active1) {
    components_[static_cast<std::size_t>(id)]->commit(now);
  }
  for (const int id : lane.active2) {
    components_[static_cast<std::size_t>(id)]->commit(now);
  }
  for (const int id : lane.commit_extras) {
    components_[static_cast<std::size_t>(id)]->commit(now);
    commit_requested_[static_cast<std::size_t>(id)] = 0;
  }
  // Retire actives that fell idle; promote extras whose freshly latched
  // state leaves them non-idle — same rules as step_activity.
  const auto retire = [this](std::vector<int>& list) {
    std::size_t keep = 0;
    for (const int id : list) {
      if (components_[static_cast<std::size_t>(id)]->is_idle()) {
        is_active_[static_cast<std::size_t>(id)] = 0;
      } else {
        list[keep++] = id;
      }
    }
    list.resize(keep);
  };
  retire(lane.active1);
  retire(lane.active2);
  bool sort1 = false;
  bool sort2 = false;
  for (const int id : lane.commit_extras) {
    if (is_active_[static_cast<std::size_t>(id)] == 0 &&
        !components_[static_cast<std::size_t>(id)]->is_idle()) {
      is_active_[static_cast<std::size_t>(id)] = 1;
      if (rt.wave_of(id) == 1) {
        lane.active1.push_back(id);
        sort1 = true;
      } else {
        lane.active2.push_back(id);
        sort2 = true;
      }
    }
  }
  lane.commit_extras.clear();
  if (sort1) std::sort(lane.active1.begin(), lane.active1.end());
  if (sort2) std::sort(lane.active2.begin(), lane.active2.end());
  detail::tl_parallel_ctx = nullptr;
}

void Engine::parallel_worker(ParallelRuntime* rt, int slot) {
  const int workers = static_cast<int>(rt->worker_errors_.size());
  for (;;) {
    rt->barrier_.arrive_and_wait();  // A: command published
    if (rt->command_.load(std::memory_order_relaxed) ==
        ParallelRuntime::Command::kExit) {
      rt->barrier_.arrive_and_wait();  // exit acknowledgement
      return;
    }
    const Cycle now = rt->step_now_.load(std::memory_order_relaxed);
    const int partitions = rt->num_partitions();
    std::exception_ptr& error = rt->worker_errors_[static_cast<std::size_t>(
        slot)];
    if (error == nullptr) {
      try {
        for (int lane = slot; lane < partitions; lane += workers) {
          run_lane_front(*rt, lane, now);
        }
      } catch (...) {
        error = std::current_exception();
        rt->failed_.store(true, std::memory_order_relaxed);
      }
    }
    rt->barrier_.arrive_and_wait();  // B
    if (error == nullptr) {
      try {
        for (int lane = slot; lane < partitions; lane += workers) {
          run_lane_wave2(*rt, lane, now);
        }
      } catch (...) {
        error = std::current_exception();
        rt->failed_.store(true, std::memory_order_relaxed);
      }
    }
    rt->barrier_.arrive_and_wait();  // C (serial phase runs on coordinator)
    rt->barrier_.arrive_and_wait();  // D
    if (error == nullptr) {
      try {
        for (int lane = slot; lane < partitions; lane += workers) {
          finish_lane(*rt, lane, now);
        }
      } catch (...) {
        error = std::current_exception();
        rt->failed_.store(true, std::memory_order_relaxed);
      }
    }
    rt->barrier_.arrive_and_wait();  // E: cycle complete
  }
}

void Engine::parallel_step() {
  ParallelRuntime& rt = *runtime_;
  rt.command_.store(ParallelRuntime::Command::kStep,
                    std::memory_order_relaxed);
  rt.step_now_.store(now_, std::memory_order_relaxed);
  stepping_ = true;
  rt.barrier_.arrive_and_wait();  // A — workers: activate + wave 1
  rt.barrier_.arrive_and_wait();  // B — workers: wave 2
  rt.barrier_.arrive_and_wait();  // C — serial window is now exclusive
  if (rt.coordinator_error_ == nullptr) {
    try {
      run_lane_front(rt, rt.serial_lane(), now_);
    } catch (...) {
      rt.coordinator_error_ = std::current_exception();
      rt.failed_.store(true, std::memory_order_relaxed);
    }
  }
  rt.barrier_.arrive_and_wait();  // D — everyone: merge + commit + retire
  if (rt.coordinator_error_ == nullptr) {
    try {
      finish_lane(rt, rt.serial_lane(), now_);
    } catch (...) {
      rt.coordinator_error_ = std::current_exception();
      rt.failed_.store(true, std::memory_order_relaxed);
    }
  }
  rt.barrier_.arrive_and_wait();  // E — cycle complete
  stepping_ = false;
  ++stats_.cycles_stepped;
  ++now_;
}

bool Engine::parallel_globally_idle() const {
  for (const ParallelLane& lane : runtime_->lanes_) {
    if (!lane.active1.empty() || !lane.active2.empty()) return false;
    if (!lane.wheel.empty() && lane.wheel.top().first <= now_) return false;
  }
  return true;
}

void Engine::parallel_skip(Cycle deadline) {
  Cycle target = deadline;
  for (const ParallelLane& lane : runtime_->lanes_) {
    if (!lane.wheel.empty()) target = std::min(target, lane.wheel.top().first);
  }
  if (target > now_) {
    stats_.cycles_skipped += target - now_;
    now_ = target;
  }
}

namespace {
/// Rethrows the first captured error (coordinator first, then slot order).
void rethrow_runtime_error(ParallelRuntime& rt, std::exception_ptr& coord,
                           std::vector<std::exception_ptr>& workers) {
  (void)rt;
  if (coord != nullptr) {
    std::exception_ptr error = coord;
    coord = nullptr;
    std::rethrow_exception(error);
  }
  for (std::exception_ptr& worker : workers) {
    if (worker != nullptr) {
      std::exception_ptr error = worker;
      worker = nullptr;
      std::rethrow_exception(error);
    }
  }
}
}  // namespace

void Engine::parallel_run(Cycle cycles) {
  ParallelRuntime& rt = *runtime_;
  const Cycle deadline = now_ + cycles;
  while (now_ < deadline) {
    if (parallel_globally_idle()) {
      parallel_skip(deadline);
    } else {
      parallel_step();
      if (rt.failed_.load(std::memory_order_relaxed)) break;
    }
  }
  if (rt.failed_.load(std::memory_order_relaxed)) {
    rt.failed_.store(false, std::memory_order_relaxed);
    rethrow_runtime_error(rt, rt.coordinator_error_, rt.worker_errors_);
  }
}

bool Engine::parallel_run_until(const std::function<bool()>& done,
                                Cycle max_cycles) {
  ParallelRuntime& rt = *runtime_;
  const Cycle deadline = now_ + max_cycles;
  bool fired = false;
  while (now_ < deadline) {
    if (parallel_globally_idle()) {
      // Same contract as the sequential activity kernel: one check settles
      // the whole idle gap; a true predicate consumes one (no-op) cycle.
      if (done()) {
        ++now_;
        fired = true;
        break;
      }
      parallel_skip(deadline);
      continue;
    }
    parallel_step();
    if (rt.failed_.load(std::memory_order_relaxed)) break;
    if (done()) {
      fired = true;
      break;
    }
  }
  if (rt.failed_.load(std::memory_order_relaxed)) {
    rt.failed_.store(false, std::memory_order_relaxed);
    rethrow_runtime_error(rt, rt.coordinator_error_, rt.worker_errors_);
  }
  return fired;
}

}  // namespace ownsim

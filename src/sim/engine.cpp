#include "sim/engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "sim/parallel.hpp"

namespace ownsim {

// Defined here (not in clocked.hpp) to break the Clocked <-> Engine include
// cycle: the inline helpers only need the Engine definition.
void Clocked::request_wake(Cycle at) {
  if (engine_ != nullptr) engine_->wake(this, at);
}

void Clocked::request_commit() {
  if (engine_ != nullptr) engine_->commit_request(this);
}

Engine::Engine() {
  // OWNSIM_PDES=1 opts every engine in the process into the parallel kernel
  // (Network installs a default partition plan when it sees the mode).
  const char* pdes = std::getenv("OWNSIM_PDES");
  if (pdes != nullptr && pdes[0] == '1') mode_ = KernelMode::kParallel;
  // Escape hatch: OWNSIM_LOCKSTEP=1 reverts every engine in the process to
  // the tick-everything kernel (differential debugging, A/B timing). Wins
  // over OWNSIM_PDES when both are set.
  const char* env = std::getenv("OWNSIM_LOCKSTEP");
  if (env != nullptr && env[0] == '1') mode_ = KernelMode::kLockstep;
}

void Engine::add(Clocked* component) {
  if (component == nullptr) throw std::invalid_argument("Engine::add: null");
  if (component->engine_ != nullptr) {
    throw std::logic_error("Engine::add: component already registered");
  }
  component->engine_ = this;
  component->sched_id_ = static_cast<int>(components_.size());
  components_.push_back(component);
  // New components start active (lockstep semantics from the next cycle);
  // idle ones retire after their first evaluated cycle. Ids are monotone, so
  // appending keeps the active lists sorted. With a parallel plan installed,
  // ids past the plan belong to the serial lane (driver extras keep their
  // exact sequential schedule there).
  is_active_.push_back(1);
  commit_requested_.push_back(0);
  if (runtime_ != nullptr) {
    lane_add_active(component->sched_id_);
  } else {
    active_.push_back(component->sched_id_);
  }
}

void Engine::set_mode(KernelMode mode) {
  if (now_ != 0) {
    throw std::logic_error(
        "Engine::set_mode: kernels agree only from a cold start (now()==0)");
  }
  // Leaving kParallel returns the lane state to the global scheduler so the
  // selected kernel sees exactly the cold-start picture it expects.
  if (mode != KernelMode::kParallel && runtime_ != nullptr) {
    teardown_parallel();
  }
  mode_ = mode;
}

void Engine::wake(Clocked* component, Cycle at) {
  // Lockstep evaluates everything anyway; recording wakes would only grow
  // the wheel without ever draining it.
  if (mode_ == KernelMode::kLockstep) return;
  const int id = component->sched_id_;
  ParallelEvalCtx* ctx = detail::tl_parallel_ctx;
  if (ctx != nullptr && ctx->engine == this) {
    // Inside a parallel phase the floor is always ctx->now + 1, so the
    // active-and-already-due skip below can never fire — boundary wakes go
    // straight to the staging buffers.
    parallel_wake(*ctx, id, std::max(at, ctx->now + 1));
    return;
  }
  // Mid-step wakes cannot rewind into the executing cycle (the target's eval
  // slot may already be past); between steps, cycle now_ is still upcoming.
  const Cycle floor = stepping_ ? now_ + 1 : now_;
  const Cycle effective = std::max(at, floor);
  if (is_active_[static_cast<std::size_t>(id)] != 0 && effective <= now_) {
    return;
  }
  if (runtime_ != nullptr) {
    lane_wheel_push(id, effective);
  } else {
    wheel_.push({effective, id});
  }
  ++stats_.wakes;
}

void Engine::commit_request(Clocked* component) {
  if (mode_ == KernelMode::kLockstep) return;
  const int id = component->sched_id_;
  ParallelEvalCtx* ctx = detail::tl_parallel_ctx;
  if (ctx != nullptr && ctx->engine == this) {
    parallel_commit_request(*ctx, id);
    return;
  }
  if (is_active_[static_cast<std::size_t>(id)] != 0 ||
      commit_requested_[static_cast<std::size_t>(id)] != 0) {
    return;
  }
  commit_requested_[static_cast<std::size_t>(id)] = 1;
  if (runtime_ != nullptr) {
    lane_commit_extra_push(id);
  } else {
    commit_extras_.push_back(id);
  }
}

void Engine::step() {
  if (runtime_ != nullptr) {
    parallel_step();
  } else if (mode_ == KernelMode::kLockstep) {
    step_lockstep();
  } else {
    step_activity();
  }
}

void Engine::step_lockstep() {
  stepping_ = true;
  for (Clocked* c : components_) c->eval(now_);
  for (Clocked* c : components_) c->commit(now_);
  stats_.evals += static_cast<std::int64_t>(components_.size());
  ++stats_.cycles_stepped;
  stepping_ = false;
  ++now_;
}

void Engine::step_activity() {
  stepping_ = true;

  // 1. Activate every component whose wakeup is due. Entries for components
  //    that re-activated earlier are stale and dropped here (lazy dedup).
  while (!wheel_.empty() && wheel_.top().first <= now_) {
    const int id = wheel_.top().second;
    wheel_.pop();
    if (!is_active_[static_cast<std::size_t>(id)]) {
      is_active_[static_cast<std::size_t>(id)] = true;
      newly_active_.push_back(id);
    }
  }
  if (!newly_active_.empty()) {
    active_.insert(active_.end(), newly_active_.begin(), newly_active_.end());
    // Registration order == id order: sorting restores lockstep's relative
    // eval order over the evaluated subset.
    std::sort(active_.begin(), active_.end());
    newly_active_.clear();
  }

  // 2. Two-phase sweep over the active subset. Evals may post wakes (>= now+1)
  //    and commit requests for dormant peers they staged writes into.
  for (const int id : active_) {
    components_[static_cast<std::size_t>(id)]->eval(now_);
  }
  for (const int id : active_) {
    components_[static_cast<std::size_t>(id)]->commit(now_);
  }
  for (const int id : commit_extras_) {
    components_[static_cast<std::size_t>(id)]->commit(now_);
    commit_requested_[static_cast<std::size_t>(id)] = false;
  }
  stats_.evals += static_cast<std::int64_t>(active_.size());

  // 3. Retire actives that fell idle; promote extras whose freshly latched
  //    state leaves them non-idle (e.g. a channel that latched a credit).
  std::size_t keep = 0;
  for (const int id : active_) {
    if (components_[static_cast<std::size_t>(id)]->is_idle()) {
      is_active_[static_cast<std::size_t>(id)] = false;
    } else {
      active_[keep++] = id;
    }
  }
  active_.resize(keep);
  bool need_sort = false;
  for (const int id : commit_extras_) {
    if (!is_active_[static_cast<std::size_t>(id)] &&
        !components_[static_cast<std::size_t>(id)]->is_idle()) {
      is_active_[static_cast<std::size_t>(id)] = true;
      active_.push_back(id);
      need_sort = true;
    }
  }
  commit_extras_.clear();
  if (need_sort) std::sort(active_.begin(), active_.end());

  ++stats_.cycles_stepped;
  stepping_ = false;
  ++now_;
}

void Engine::skip_to_next_event(Cycle deadline) {
  const Cycle target =
      wheel_.empty() ? deadline : std::min(wheel_.top().first, deadline);
  if (target > now_) {
    stats_.cycles_skipped += target - now_;
    now_ = target;
  }
}

void Engine::run(Cycle cycles) {
  if (runtime_ != nullptr) {
    parallel_run(cycles);
    return;
  }
  const Cycle deadline = now_ + cycles;
  while (now_ < deadline) {
    if (globally_idle()) {
      skip_to_next_event(deadline);
    } else {
      step();
    }
  }
}

bool Engine::run_until(const std::function<bool()>& done, Cycle max_cycles) {
  if (runtime_ != nullptr) return parallel_run_until(done, max_cycles);
  const Cycle deadline = now_ + max_cycles;
  if (mode_ == KernelMode::kLockstep) {
    while (now_ < deadline) {
      step();
      if (done()) return true;
    }
    return false;
  }
  while (now_ < deadline) {
    if (globally_idle()) {
      // Nothing is awake: component state is frozen until the next wakeup, so
      // one check settles the whole gap. A true predicate still consumes one
      // (no-op) cycle, exactly as the lockstep loop would have.
      if (done()) {
        ++now_;
        return true;
      }
      skip_to_next_event(deadline);
      continue;
    }
    step();
    if (done()) return true;
  }
  return false;
}

}  // namespace ownsim

#include "sim/engine.hpp"

#include <stdexcept>

namespace ownsim {

void Engine::add(Clocked* component) {
  if (component == nullptr) throw std::invalid_argument("Engine::add: null");
  components_.push_back(component);
}

void Engine::step() {
  for (Clocked* c : components_) c->eval(now_);
  for (Clocked* c : components_) c->commit(now_);
  ++now_;
}

void Engine::run(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) step();
}

bool Engine::run_until(const std::function<bool()>& done, Cycle max_cycles) {
  const Cycle deadline = now_ + max_cycles;
  while (now_ < deadline) {
    step();
    if (done()) return true;
  }
  return false;
}

}  // namespace ownsim

// Partitioned parallel kernel support (DESIGN.md §5i).
//
// The parallel kernel (KernelMode::kParallel) splits the component registry
// into partitions and evaluates them on worker threads in lockstep epochs.
// Every cross-component pipe in this codebase has latency >= 1 — the same
// property the §5e no-reorder proof rests on — so the conservative PDES
// lookahead is one cycle and an epoch is one cycle split into waves:
//
//   wave 1  producers: NIC + routers       (parallel across partitions)
//   wave 2  pipes: media + channels        (parallel across partitions)
//   serial  everything past the plan: injector, fault campaign, watchdog,
//           test components                (coordinator thread, id order)
//   commit  merge boundary staging buffers, commit, retire/promote
//                                          (parallel across partitions)
//
// Components in the same wave never touch each other's same-cycle state
// (each endpoint half of a channel/medium belongs to exactly one wave-1
// evaluator; see §5i for the pair-by-pair argument), and the wave order
// equals registration-id order, so per-cycle behaviour is bit-identical to
// the sequential activity kernel for ANY partition count and thread count.
//
// Cross-partition wakes and commit requests raised during a wave are not
// applied directly — they are appended to per-edge staging buffers
// (`wake_out` / `commit_out`, the "boundary exchange") and merged into the
// owning partition's wheel/extras at the commit phase, exactly where the
// sequential kernel would have observed them.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "exec/thread_pool.hpp"

namespace ownsim {

class Engine;

/// Static assignment of engine component ids to partitions and waves.
/// Components added to the engine after `configure_parallel` (ids past
/// `partition.size()`) fall into the serial lane automatically — that is
/// how the driver extras (injector, campaign, watchdog) keep their exact
/// sequential schedule.
struct ParallelPlan {
  std::vector<int> partition;      ///< per component id, in [0, num_partitions)
  std::vector<std::uint8_t> wave;  ///< per component id: 1 (producer) or 2 (pipe)
  int num_partitions = 0;

  /// Structural check; throws std::invalid_argument on violations.
  void validate(std::size_t num_components) const;
};

/// Reusable sense-reversing barrier separating the epoch waves. Waiters spin
/// briefly (a wave on a busy network completes in microseconds), then fall
/// back to the condition variable so parked workers cost nothing between
/// runs. The generation counter is bumped under `mu_` so a sleeper can never
/// miss the wakeup between its re-check and `cv_.wait`.
class PhaseBarrier {
 public:
  explicit PhaseBarrier(int parties) : parties_(parties) {}

  PhaseBarrier(const PhaseBarrier&) = delete;
  PhaseBarrier& operator=(const PhaseBarrier&) = delete;

  void arrive_and_wait() {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      count_.store(0, std::memory_order_relaxed);
      {
        MutexLock lock(mu_);
        generation_.fetch_add(1, std::memory_order_release);
      }
      cv_.notify_all();
      return;
    }
    for (int spin = 0; spin < kSpinLimit; ++spin) {
      if (generation_.load(std::memory_order_acquire) != gen) return;
      if ((spin & 63) == 63) std::this_thread::yield();
    }
    MutexLock lock(mu_);
    while (generation_.load(std::memory_order_acquire) == gen) cv_.wait(lock);
  }

 private:
  static constexpr int kSpinLimit = 1 << 14;

  const int parties_;
  std::atomic<int> count_{0};
  std::atomic<std::uint64_t> generation_{0};
  Mutex mu_;
  CondVar cv_;
};

/// Per-partition scheduler state plus the boundary staging buffers. Lane
/// index `num_partitions` is the serial lane (coordinator-owned). Outside
/// the phases below, a lane is touched only by the coordinator thread.
struct ParallelLane {
  using WakeEntry = std::pair<Cycle, int>;  // (cycle, component id)

  std::vector<int> active1;  ///< wave-1 actives, sorted by id
  std::vector<int> active2;  ///< wave-2 actives, sorted by id
  std::priority_queue<WakeEntry, std::vector<WakeEntry>,
                      std::greater<WakeEntry>>
      wheel;
  std::vector<int> newly1;  ///< scratch for the activation merge
  std::vector<int> newly2;
  std::vector<int> commit_extras;  ///< dormant ids to commit this cycle
  std::int64_t evals = 0;          ///< folded into Engine::Stats on demand
  std::int64_t wakes = 0;

  // Boundary exchange: wakes/commit-requests this lane raised for other
  // lanes during the eval waves, merged by the OWNING lane at the commit
  // phase (writer: this lane's evaluator during waves; reader: the
  // destination lane's evaluator at commit — never concurrently, the wave
  // barriers order the two).
  std::vector<std::vector<WakeEntry>> wake_out;  ///< indexed by dest lane
  std::vector<std::vector<int>> commit_out;      ///< indexed by dest lane
};

/// Thread-local evaluation context installed while a lane's components run.
/// Clocked::request_wake / request_commit route through it so boundary
/// traffic lands in the staging buffers instead of the shared wheel.
struct ParallelEvalCtx {
  Engine* engine = nullptr;
  ParallelLane* lane = nullptr;
  int lane_index = -1;
  Cycle now = 0;
};

namespace detail {
/// Active evaluation context of the calling thread (null outside the
/// parallel phases). Defined in engine_parallel.cpp.
extern thread_local ParallelEvalCtx* tl_parallel_ctx;
}  // namespace detail

/// Worker-thread substrate for one configured engine: the lanes, the phase
/// barrier and a dedicated thread pool whose workers live for the runtime's
/// lifetime (commands arrive through the barrier; `kExit` from the dtor).
/// The pool is private to the engine so a parallel run never deadlocks
/// against sweep-level pools using the same `exec::ThreadPool` class.
class ParallelRuntime {
 public:
  ParallelRuntime(Engine* engine, ParallelPlan plan, unsigned threads);
  ~ParallelRuntime();

  ParallelRuntime(const ParallelRuntime&) = delete;
  ParallelRuntime& operator=(const ParallelRuntime&) = delete;

  int num_partitions() const { return plan_.num_partitions; }
  int serial_lane() const { return plan_.num_partitions; }
  int num_lanes() const { return plan_.num_partitions + 1; }
  unsigned threads() const { return pool_.size(); }

  int lane_of(int id) const {
    const auto index = static_cast<std::size_t>(id);
    return index < plan_.partition.size() ? plan_.partition[index]
                                          : serial_lane();
  }
  int wave_of(int id) const {
    const auto index = static_cast<std::size_t>(id);
    return index < plan_.wave.size() ? plan_.wave[index] : 1;
  }

 private:
  friend class Engine;

  enum class Command : int { kStep, kExit };

  Engine* engine_;
  ParallelPlan plan_;
  std::vector<ParallelLane> lanes_;  ///< size num_lanes(); serial lane last
  /// First exception per worker slot; written by the owning slot during a
  /// phase, read by the coordinator after the end-of-cycle barrier.
  std::vector<std::exception_ptr> worker_errors_;
  std::exception_ptr coordinator_error_;
  std::atomic<Command> command_{Command::kStep};
  std::atomic<Cycle> step_now_{0};
  std::atomic<bool> failed_{false};
  PhaseBarrier barrier_;  ///< parties: workers + coordinator
  std::vector<std::future<void>> workers_;
  exec::ThreadPool pool_;  ///< last member: destroyed (joined) first
};

}  // namespace ownsim

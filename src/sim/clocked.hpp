// Two-phase clocked component interface.
//
// Every hardware entity (router, channel, shared medium, NIC) advances in two
// phases per cycle:
//   eval(now)   — compute next state; may *stage* writes into other
//                 components' mailboxes but must not make them visible.
//   commit(now) — latch staged state; staged writes become visible for
//                 cycle now+1.
//
// All cross-component communication goes through latency >= 1 pipes, so the
// relative eval order of components never changes results.
#pragma once

#include "common/types.hpp"

namespace ownsim {

class Clocked {
 public:
  virtual ~Clocked() = default;
  virtual void eval(Cycle now) = 0;
  virtual void commit(Cycle now) = 0;
};

}  // namespace ownsim

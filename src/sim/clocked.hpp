// Two-phase clocked component interface.
//
// Every hardware entity (router, channel, shared medium, NIC) advances in two
// phases per cycle:
//   eval(now)   — compute next state; may *stage* writes into other
//                 components' mailboxes but must not make them visible.
//   commit(now) — latch staged state; staged writes become visible for
//                 cycle now+1.
//
// All cross-component communication goes through latency >= 1 pipes, so the
// relative eval order of components never changes results.
//
// Quiescence contract (activity-driven kernel, DESIGN.md §5e): a component
// may declare itself dormant via `is_idle()`. The engine then skips its
// eval/commit until something wakes it. A component (or a peer staging a
// write into it) must therefore:
//   * call `request_wake(at)` whenever state will need evaluating at cycle
//     `at` (a flit/credit arrival, a scheduled injection), and
//   * call `request_commit()` during eval whenever it staged writes that
//     must be latched this cycle (the engine commits it even if dormant).
// Any per-cycle state a dormant component would have mutated anyway (e.g. a
// free-running token) must be reconstructed in closed form on the next eval.
// The default `is_idle()` returns false: unaware components simply stay in
// the active set every cycle, which is always correct (lockstep behaviour).
#pragma once

#include "common/types.hpp"

namespace ownsim {

class Engine;

class Clocked {
 public:
  virtual ~Clocked() = default;
  virtual void eval(Cycle now) = 0;
  virtual void commit(Cycle now) = 0;

  /// True when eval/commit would be a no-op until the next `request_wake`.
  /// Consulted by the engine after each commit; see the contract above.
  virtual bool is_idle() const { return false; }

  /// Asks the engine to evaluate this component at cycle `at` (clamped to
  /// the earliest cycle the engine can still honor). Public because peers
  /// wake each other (a channel wakes its sink router at flit arrival).
  /// No-op when unscheduled. Defined in engine.cpp (avoids an include cycle).
  void request_wake(Cycle at);

 protected:
  /// True once this component is registered with an engine. Gap catch-up
  /// (token position, RR pointers) must be gated on this so manually driven
  /// components (unit tests) keep plain per-call semantics.
  bool scheduled() const { return engine_ != nullptr; }

  /// Asks the engine to commit this component at the current cycle even if
  /// it is dormant (staged writes must latch). No-op when unscheduled.
  void request_commit();

 private:
  friend class Engine;
  Engine* engine_ = nullptr;
  int sched_id_ = -1;
};

}  // namespace ownsim

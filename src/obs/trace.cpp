#include "obs/trace.hpp"

#include <cstdio>
#include <ostream>

namespace ownsim::obs {

void TraceWriter::begin(std::string name, std::string cat, int pid, int tid,
                        Cycle ts) {
  TraceEvent e;
  e.phase = TraceEvent::Phase::kBegin;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.pid = pid;
  e.tid = tid;
  e.ts = ts;
  MutexLock lock(mu_);
  events_.push_back(std::move(e));
}

void TraceWriter::end(int pid, int tid, Cycle ts) {
  TraceEvent e;
  e.phase = TraceEvent::Phase::kEnd;
  e.pid = pid;
  e.tid = tid;
  e.ts = ts;
  MutexLock lock(mu_);
  events_.push_back(std::move(e));
}

void TraceWriter::complete(
    std::string name, std::string cat, int pid, int tid, Cycle ts, Cycle dur,
    std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent e;
  e.phase = TraceEvent::Phase::kComplete;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.pid = pid;
  e.tid = tid;
  e.ts = ts;
  e.dur = dur;
  e.args = std::move(args);
  MutexLock lock(mu_);
  events_.push_back(std::move(e));
}

void TraceWriter::instant(
    std::string name, std::string cat, int pid, int tid, Cycle ts,
    std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent e;
  e.phase = TraceEvent::Phase::kInstant;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.pid = pid;
  e.tid = tid;
  e.ts = ts;
  e.args = std::move(args);
  MutexLock lock(mu_);
  events_.push_back(std::move(e));
}

void TraceWriter::set_process_name(int pid, const std::string& name) {
  TraceEvent e;
  e.phase = TraceEvent::Phase::kMetadata;
  e.name = "process_name";
  e.pid = pid;
  e.args.emplace_back("name", '"' + json_escape(name) + '"');
  MutexLock lock(mu_);
  events_.push_back(std::move(e));
}

void TraceWriter::set_thread_name(int pid, int tid, const std::string& name) {
  TraceEvent e;
  e.phase = TraceEvent::Phase::kMetadata;
  e.name = "thread_name";
  e.pid = pid;
  e.tid = tid;
  e.args.emplace_back("name", '"' + json_escape(name) + '"');
  MutexLock lock(mu_);
  events_.push_back(std::move(e));
}

void TraceWriter::write_json(std::ostream& os) const {
  MutexLock lock(mu_);
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events_) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"ph\": \"" << static_cast<char>(e.phase) << '"';
    if (!e.name.empty()) os << ", \"name\": \"" << json_escape(e.name) << '"';
    if (!e.cat.empty()) os << ", \"cat\": \"" << json_escape(e.cat) << '"';
    os << ", \"pid\": " << e.pid << ", \"tid\": " << e.tid
       << ", \"ts\": " << e.ts;
    if (e.phase == TraceEvent::Phase::kComplete) os << ", \"dur\": " << e.dur;
    // Instant events need a scope; "t" (thread) keeps them on their track.
    if (e.phase == TraceEvent::Phase::kInstant) os << ", \"s\": \"t\"";
    if (!e.args.empty()) {
      os << ", \"args\": {";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        os << (i == 0 ? "" : ", ") << '"' << json_escape(e.args[i].first)
           << "\": " << e.args[i].second;
      }
      os << '}';
    }
    os << '}';
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace ownsim::obs

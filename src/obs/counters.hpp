// Low-overhead observability counters.
//
// A `Registry` owns named 64-bit slots; components resolve `Counter` /
// `Gauge` handles ONCE at registration (a handle is a raw pointer to its
// slot), so the hot-path cost of an increment is one indirect atomic add —
// no map lookup, no lock, no branch beyond the unbound-handle check. A
// registry belongs to one `Network`; under the parallel kernel (DESIGN.md
// §5i) partition workers update slots concurrently — shared slots like the
// aggregate fault counters from several channels at once — so updates go
// through relaxed `std::atomic_ref` operations. Increments commute exactly
// (integer adds, max), so totals stay bit-identical to a sequential run for
// any thread count. Registry-level reads (for_each, value) remain plain:
// they only run while the simulation is quiesced.
//
// Counters are observational by contract: nothing in src/ may read a counter
// to make a simulated decision, so results are bit-identical whether the
// subsystem is enabled, disabled, or compiled out entirely.
//
// Compile-time kill switch: configuring with `-DOWNSIM_OBS=OFF` defines
// `OWNSIM_OBS_ENABLED=0` and swaps every type below for an empty no-op
// mirror with the same API. Call sites don't change; the optimizer erases
// them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#ifndef OWNSIM_OBS_ENABLED
#define OWNSIM_OBS_ENABLED 1
#endif

namespace ownsim::obs {

#if OWNSIM_OBS_ENABLED

/// Monotonic event count. Default-constructed handles are unbound and
/// silently drop updates (components built without a registry stay valid).
class Counter {
 public:
  Counter() = default;

  void inc() {
    if (slot_ != nullptr) {
      std::atomic_ref<std::int64_t>(*slot_).fetch_add(
          1, std::memory_order_relaxed);
    }
  }
  void add(std::int64_t n) {
    if (slot_ != nullptr) {
      std::atomic_ref<std::int64_t>(*slot_).fetch_add(
          n, std::memory_order_relaxed);
    }
  }
  std::int64_t value() const {
    return slot_ != nullptr
               ? std::atomic_ref<const std::int64_t>(*slot_).load(
                     std::memory_order_relaxed)
               : 0;
  }
  bool bound() const { return slot_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(std::int64_t* slot) : slot_(slot) {}
  std::int64_t* slot_ = nullptr;
};

/// Level/highwater observation: `observe` keeps the maximum seen, `set`
/// overwrites (for sampled levels).
class Gauge {
 public:
  Gauge() = default;

  void observe_max(std::int64_t v) {
    if (slot_ == nullptr) return;
    std::atomic_ref<std::int64_t> slot(*slot_);
    std::int64_t seen = slot.load(std::memory_order_relaxed);
    while (v > seen &&
           !slot.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  void set(std::int64_t v) {
    if (slot_ != nullptr) {
      std::atomic_ref<std::int64_t>(*slot_).store(v,
                                                  std::memory_order_relaxed);
    }
  }
  std::int64_t value() const {
    return slot_ != nullptr
               ? std::atomic_ref<const std::int64_t>(*slot_).load(
                     std::memory_order_relaxed)
               : 0;
  }
  bool bound() const { return slot_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(std::int64_t* slot) : slot_(slot) {}
  std::int64_t* slot_ = nullptr;
};

/// Named slot store. Registration is idempotent: asking twice for the same
/// name returns handles onto the same slot (useful when two code paths
/// account into one logical counter).
class Registry {
 public:
  Counter counter(const std::string& name) { return Counter(slot(name)); }
  Gauge gauge(const std::string& name) { return Gauge(slot(name)); }

  /// Value by name; 0 for unregistered names.
  std::int64_t value(std::string_view name) const;
  bool contains(std::string_view name) const;
  std::size_t size() const { return slots_.size(); }

  /// Zeroes every slot; handles stay bound.
  void reset();

  /// Visits (name, value) in lexicographic name order.
  void for_each(
      const std::function<void(const std::string&, std::int64_t)>& fn) const;

  /// Flat JSON object {"name": value, ...}, names sorted.
  void write_json(std::ostream& os) const;

 private:
  std::int64_t* slot(const std::string& name);

  // std::map: stable addresses for the mapped values (handles point at
  // them) and sorted iteration for free.
  std::map<std::string, std::int64_t, std::less<>> slots_;
};

#else  // !OWNSIM_OBS_ENABLED — same API, no state, no code.

class Counter {
 public:
  void inc() {}
  void add(std::int64_t) {}
  std::int64_t value() const { return 0; }
  bool bound() const { return false; }
};

class Gauge {
 public:
  void observe_max(std::int64_t) {}
  void set(std::int64_t) {}
  std::int64_t value() const { return 0; }
  bool bound() const { return false; }
};

class Registry {
 public:
  Counter counter(const std::string&) { return Counter(); }
  Gauge gauge(const std::string&) { return Gauge(); }
  std::int64_t value(std::string_view) const { return 0; }
  bool contains(std::string_view) const { return false; }
  std::size_t size() const { return 0; }
  void reset() {}
  void for_each(
      const std::function<void(const std::string&, std::int64_t)>&) const {}
  void write_json(std::ostream& os) const;
};

#endif  // OWNSIM_OBS_ENABLED

}  // namespace ownsim::obs

// Chrome trace_event recorder.
//
// `TraceWriter` buffers timeline events in memory and serializes them in the
// Trace Event Format consumed by chrome://tracing and ui.perfetto.dev
// (JSON object form: {"traceEvents": [...]}). Timestamps are SIMULATED
// cycles mapped 1:1 onto microseconds — wall time never enters a trace, so
// recording one is deterministic and replayable.
//
// Track layout convention (see Network::set_trace):
//   pid kPidRun      — the measurement driver's warmup/measure/drain slices
//   pid kPidMedia    — one tid per shared medium: token grants (instant
//                      events) and per-packet bus occupancy (complete events)
//   pid kPidLinks    — one tid per point-to-point channel: coalesced busy
//                      intervals (complete events)
//
// Recording is observational: components take a nullable `TraceWriter*` and
// results are bit-identical with tracing on or off (asserted by
// Obs.TraceDoesNotPerturbResults). Under the parallel kernel (DESIGN.md §5i)
// components on different partition workers append concurrently, so the
// buffer is mutex-guarded. The relative order of events recorded within one
// cycle by different partitions is then scheduling-dependent — simulated
// results are unaffected (traces are write-only from the simulation's point
// of view), but a trace recorded under kParallel is not byte-stable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace ownsim::obs {

/// One trace_event record. `args` are pre-rendered (key, json-value) pairs;
/// string values must arrive already quoted.
struct TraceEvent {
  enum class Phase : char {
    kBegin = 'B',
    kEnd = 'E',
    kComplete = 'X',
    kInstant = 'i',
    kMetadata = 'M',
  };

  Phase phase = Phase::kInstant;
  std::string name;
  std::string cat;
  int pid = 0;
  int tid = 0;
  std::int64_t ts = 0;   ///< microseconds == simulated cycles
  std::int64_t dur = 0;  ///< kComplete only
  std::vector<std::pair<std::string, std::string>> args;
};

class TraceWriter {
 public:
  static constexpr int kPidRun = 1;
  static constexpr int kPidMedia = 2;
  static constexpr int kPidLinks = 3;

  void begin(std::string name, std::string cat, int pid, int tid, Cycle ts);
  void end(int pid, int tid, Cycle ts);
  void complete(std::string name, std::string cat, int pid, int tid, Cycle ts,
                Cycle dur,
                std::vector<std::pair<std::string, std::string>> args = {});
  void instant(std::string name, std::string cat, int pid, int tid, Cycle ts,
               std::vector<std::pair<std::string, std::string>> args = {});

  /// Perfetto-visible labels for the pid/tid tracks.
  void set_process_name(int pid, const std::string& name);
  void set_thread_name(int pid, int tid, const std::string& name);

  /// Direct view of the buffer. Only meaningful while no simulation is
  /// running (tests inspect it post-run), hence unlocked.
  const std::vector<TraceEvent>& events() const OWNSIM_NO_THREAD_SAFETY_ANALYSIS {
    return events_;
  }
  std::size_t size() const {
    MutexLock lock(mu_);
    return events_.size();
  }
  bool empty() const {
    MutexLock lock(mu_);
    return events_.empty();
  }

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} — one event per line.
  void write_json(std::ostream& os) const;

 private:
  mutable Mutex mu_;
  std::vector<TraceEvent> events_ OWNSIM_GUARDED_BY(mu_);
};

/// Escapes `\`, `"` and control characters for embedding in a JSON string.
std::string json_escape(const std::string& s);

}  // namespace ownsim::obs

#include "obs/counters.hpp"

#include <ostream>

namespace ownsim::obs {

#if OWNSIM_OBS_ENABLED

std::int64_t* Registry::slot(const std::string& name) {
  return &slots_.try_emplace(name, 0).first->second;
}

std::int64_t Registry::value(std::string_view name) const {
  const auto it = slots_.find(name);
  return it != slots_.end() ? it->second : 0;
}

bool Registry::contains(std::string_view name) const {
  return slots_.find(name) != slots_.end();
}

void Registry::reset() {
  for (auto& [name, value] : slots_) value = 0;
}

void Registry::for_each(
    const std::function<void(const std::string&, std::int64_t)>& fn) const {
  for (const auto& [name, value] : slots_) fn(name, value);
}

void Registry::write_json(std::ostream& os) const {
  os << '{';
  bool first = true;
  for (const auto& [name, value] : slots_) {
    os << (first ? "" : ", ") << '"' << name << "\": " << value;
    first = false;
  }
  os << '}';
}

#else

void Registry::write_json(std::ostream& os) const { os << "{}"; }

#endif  // OWNSIM_OBS_ENABLED

}  // namespace ownsim::obs

// On-disk content-addressed result store for the experiment service.
//
// Entries are keyed by the experiment cache key (SHA-256 of canonical config
// JSON + code version, driver/experiment_config.hpp) and sharded into
// two-hex-char subdirectories. Each entry file carries a self-describing
// header — magic, key, payload digest, payload length — so a reader can
// prove an entry intact before serving it:
//
//   ownsim-result-store v1
//   key <64 hex>
//   sha256 <64 hex of payload>
//   bytes <payload length>
//   <blank line>
//   <payload bytes>
//
// Integrity rule: NEVER serve bytes that fail verification. A truncated,
// bit-flipped, or mis-keyed entry is counted, deleted (best effort), and
// reported as a miss — the caller recomputes, which determinism makes exact.
//
// Concurrency rule: writers stage to a unique temp file in the entry's
// directory and publish with rename(2), which is atomic on POSIX — readers
// see either no entry or a complete one, never a partial write. Concurrent
// same-key writers race benignly: both rename complete files with identical
// bytes (same key -> same deterministic payload), last one wins.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>

#include "common/thread_annotations.hpp"

namespace ownsim::serve {

class ResultStore {
 public:
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t writes = 0;
    std::int64_t corrupt_rejected = 0;  ///< entries failing verification
  };

  /// Opens (creating if needed) the store rooted at `root`.
  /// Throws std::runtime_error when the directory cannot be created.
  explicit ResultStore(std::filesystem::path root);

  /// The verified payload for `key`, or nullopt (absent OR corrupt — both
  /// mean "recompute"). Thread-safe.
  std::optional<std::string> load(const std::string& key);

  /// Atomically publishes `payload` under `key`. An existing valid entry is
  /// left untouched (its bytes are already what determinism dictates).
  /// Thread-safe; throws std::runtime_error on I/O failure.
  void put(const std::string& key, std::string_view payload);

  /// Where `key`'s entry lives (whether or not it exists yet).
  std::filesystem::path entry_path(const std::string& key) const;

  const std::filesystem::path& root() const { return root_; }
  Stats stats() const;

 private:
  std::optional<std::string> read_verified(const std::string& key);

  std::filesystem::path root_;
  // Entry files themselves need no lock: writers publish via atomic rename
  // and readers verify before serving (see the concurrency rule above).
  mutable Mutex mu_;
  Stats stats_ OWNSIM_GUARDED_BY(mu_);
  std::uint64_t temp_seq_ OWNSIM_GUARDED_BY(mu_) = 0;
};

}  // namespace ownsim::serve

#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <utility>

#include "common/config.hpp"

namespace ownsim::serve {
namespace {

#if defined(MSG_NOSIGNAL)
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

Json error_event(const std::string& message) {
  Json::Object o;
  o["event"] = Json("error");
  o["error"] = Json(message);
  return Json(std::move(o));
}

/// Flattens a {"key": value, ...} request object into the Config vocabulary
/// parse_experiment_config consumes. Values may be strings, numbers or
/// booleans; nested objects/arrays are rejected.
Config config_from_json(const Json& object) {
  Config config;
  for (const auto& [key, value] : object.as_object()) {
    if (value.is_string()) {
      config.set(key, value.as_string());
    } else if (value.is_bool()) {
      config.set_bool(key, value.as_bool());
    } else if (value.is_int()) {
      config.set_int(key, value.as_int());
    } else if (value.is_double()) {
      config.set_double(key, value.as_double());
    } else {
      throw std::invalid_argument("config value for '" + key +
                                  "' must be a scalar");
    }
  }
  return config;
}

}  // namespace

void ServeDaemon::Connection::write_line(const std::string& line) {
  MutexLock lock(write_mu);
  if (!open.load(std::memory_order_acquire)) return;
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                             kSendFlags);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Peer went away; further events for this subscriber are dropped.
      open.store(false, std::memory_order_release);
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

void ServeDaemon::Connection::close_fd() {
  open.store(false, std::memory_order_release);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
  }
}

ServeDaemon::ServeDaemon(ServerOptions options)
    : options_(std::move(options)), service_(options_.service) {
#if defined(SIGPIPE) && !defined(MSG_NOSIGNAL)
  ::signal(SIGPIPE, SIG_IGN);
#endif
  if (options_.socket_path.empty()) {
    throw std::runtime_error("ServeDaemon: socket path is required");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("ServeDaemon: socket path too long: " +
                             options_.socket_path);
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("ServeDaemon: socket(): " +
                             std::string(std::strerror(errno)));
  }
  // A stale socket file from a dead daemon would make bind fail; a live
  // daemon on the same path loses its socket, so paths should be unique.
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string message = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("ServeDaemon: bind(" + options_.socket_path +
                             "): " + message);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string message = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("ServeDaemon: listen(): " + message);
  }
  log("listening on " + options_.socket_path);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

ServeDaemon::~ServeDaemon() {
  stop(/*drain=*/false);
}

void ServeDaemon::log(const std::string& message) const {
  if (!options_.verbose) return;
  std::cerr << "[ownsim_serve] " << message << "\n";
}

void ServeDaemon::accept_loop() {
  // Local copy: stop() shuts the listener down to wake accept(), then joins
  // this thread, and only then writes listen_fd_ — re-reading the member
  // here would race that write.
  const int listen_fd = listen_fd_;
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down during stop()
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      MutexLock lock(mu_);
      if (stopped_ || shutdown_requested_) {
        ::close(fd);
        return;
      }
      connections_.push_back(conn);
      connection_threads_.emplace_back(
          [this, conn] { serve_connection(conn); });
    }
    log("client connected");
  }
}

void ServeDaemon::serve_connection(const ConnectionPtr& conn) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed, or close_fd() during stop
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline = 0;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      handle_request(conn, line);
    }
  }
  conn->open.store(false, std::memory_order_release);
  log("client disconnected");
}

void ServeDaemon::handle_request(const ConnectionPtr& conn,
                                 const std::string& line) {
  Json request;
  try {
    request = Json::parse(line);
  } catch (const std::exception& e) {
    conn->write_line(error_event(std::string("bad request JSON: ") + e.what())
                         .dump());
    return;
  }
  std::string verb;
  try {
    if (!request.is_object()) {
      throw std::invalid_argument("request must be a JSON object");
    }
    const Json* verb_field = request.find("verb");
    if (verb_field == nullptr || !verb_field->is_string()) {
      throw std::invalid_argument("request needs a string \"verb\"");
    }
    verb = verb_field->as_string();

    if (verb == "ping") {
      Json::Object o;
      o["event"] = Json("pong");
      o["code_version"] = Json(code_version());
      conn->write_line(Json(std::move(o)).dump());
    } else if (verb == "submit") {
      const Json* config_field = request.find("config");
      if (config_field == nullptr || !config_field->is_object()) {
        throw std::invalid_argument("submit needs a \"config\" object");
      }
      const ExperimentConfig config =
          parse_experiment_config(config_from_json(*config_field));
      int priority = 0;
      if (const Json* p = request.find("priority")) {
        priority = static_cast<int>(p->as_int());
      }
      bool stream = true;
      if (const Json* s = request.find("stream")) stream = s->as_bool();

      ExperimentService::EventFn subscriber;
      if (stream) {
        subscriber = [conn](const Json& event) {
          conn->write_line(event.dump());
        };
      }
      const ExperimentService::SubmitOutcome outcome =
          service_.submit(config, priority, subscriber);
      if (outcome.rejected && !stream) {
        conn->write_line(error_event("service is shutting down").dump());
      } else if (!stream) {
        Json::Object o;
        o["event"] = Json("accepted");
        o["job"] = Json(outcome.job_id);
        o["key"] = Json(outcome.cache_key);
        o["cache_hit"] = Json(outcome.cache_hit);
        o["attached"] = Json(outcome.attached);
        conn->write_line(Json(std::move(o)).dump());
      }
      log("submit " + outcome.job_id + " key=" +
          outcome.cache_key.substr(0, 12) +
          (outcome.cache_hit ? " (cache hit)"
                             : (outcome.attached ? " (attached)" : "")));
    } else if (verb == "status") {
      if (const Json* job = request.find("job")) {
        const Json status = service_.status(job->as_string());
        if (status.is_null()) {
          conn->write_line(
              error_event("unknown job: " + job->as_string()).dump());
        } else {
          conn->write_line(status.dump());
        }
      } else {
        conn->write_line(service_.status_all().dump());
      }
    } else if (verb == "result") {
      const Json* job = request.find("job");
      if (job == nullptr) throw std::invalid_argument("result needs \"job\"");
      conn->write_line(service_.result_event(job->as_string()).dump());
    } else if (verb == "cancel") {
      const Json* job = request.find("job");
      if (job == nullptr) throw std::invalid_argument("cancel needs \"job\"");
      const bool ok = service_.cancel(job->as_string());
      Json::Object o;
      o["event"] = Json("cancel_ack");
      o["job"] = Json(job->as_string());
      o["ok"] = Json(ok);
      conn->write_line(Json(std::move(o)).dump());
    } else if (verb == "stats") {
      conn->write_line(service_.stats().dump());
    } else if (verb == "shutdown") {
      bool drain = true;
      if (const Json* d = request.find("drain")) drain = d->as_bool();
      Json::Object o;
      o["event"] = Json("shutdown_ack");
      o["drain"] = Json(drain);
      conn->write_line(Json(std::move(o)).dump());
      request_shutdown(drain);
    } else {
      throw std::invalid_argument("unknown verb: " + verb);
    }
  } catch (const std::exception& e) {
    conn->write_line(error_event(e.what()).dump());
  }
}

void ServeDaemon::request_shutdown(bool drain) {
  {
    MutexLock lock(mu_);
    if (shutdown_requested_) return;
    shutdown_requested_ = true;
    shutdown_drain_ = drain;
  }
  log(std::string("shutdown requested (drain=") + (drain ? "true" : "false") +
      ")");
  shutdown_cv_.notify_all();
}

void ServeDaemon::wait_for_shutdown() {
  bool drain = true;
  {
    MutexLock lock(mu_);
    while (!shutdown_requested_ && !stopped_) shutdown_cv_.wait(lock);
    drain = shutdown_drain_;
  }
  stop(drain);
}

void ServeDaemon::stop(bool drain) {
  {
    MutexLock lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    shutdown_requested_ = true;
    shutdown_drain_ = drain;
  }
  shutdown_cv_.notify_all();

  // Finish or cancel the work first so streamed done/cancelled events reach
  // their still-open connections, then tear the transport down.
  service_.shutdown(drain);

  if (listen_fd_ >= 0) {
    // Wake the blocked accept() first, join the accept thread, and only then
    // close + clear the member (accept_loop holds its own copy of the fd).
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (accept_thread_.joinable()) accept_thread_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;
  } else if (accept_thread_.joinable()) {
    accept_thread_.join();
  }

  std::vector<ConnectionPtr> connections;
  std::vector<std::thread> threads;
  {
    MutexLock lock(mu_);
    connections.swap(connections_);
    threads.swap(connection_threads_);
  }
  for (const ConnectionPtr& conn : connections) {
    conn->close_fd();
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
  for (const ConnectionPtr& conn : connections) {
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  ::unlink(options_.socket_path.c_str());
  log("stopped");
}

}  // namespace ownsim::serve

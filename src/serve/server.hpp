// ServeDaemon: the socket front end of ownsim_serve.
//
// Listens on an AF_UNIX stream socket and speaks newline-delimited JSON:
// every request is one JSON object on one line, every reply is a stream of
// JSONL events on the same connection. No external dependencies — the wire
// format is the serve::Json layer, the transport is POSIX sockets.
//
// Request verbs (field "verb"):
//   ping      -> {"event":"pong", "code_version":...}
//   submit    -> config in "config" (flat key=value object, the ownsim_cli
//                vocabulary), optional "priority" (int, higher first) and
//                "stream" (bool, default true). Replies `accepted`, then —
//                when streaming — the job's `started`/`progress` events and
//                finally exactly one of `done` / `cancelled` / `failed`.
//                Cache hits reply `accepted` + `done` immediately with
//                "cache_hit": true.
//   status    -> optional "job"; one job's status or all jobs.
//   result    -> "job"; the done event (payload included) or `pending`.
//   cancel    -> "job"; {"event":"cancel_ack", "ok":...}.
//   stats     -> service + store counters.
//   shutdown  -> optional "drain" (bool, default true); acks, then the
//                daemon stops (wait_for_shutdown returns).
//
// Malformed lines get an `error` event; the connection stays open. A client
// may pipeline many submits on one connection; events carry "job" ids so
// interleaved streams can be demultiplexed.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "serve/service.hpp"

namespace ownsim::serve {

struct ServerOptions {
  std::string socket_path;  ///< AF_UNIX path; replaced if already present
  ServiceOptions service;
  bool verbose = false;  ///< per-connection logging on stderr
};

class ServeDaemon {
 public:
  /// Binds + listens and starts the accept thread.
  /// Throws std::runtime_error when the socket cannot be created.
  explicit ServeDaemon(ServerOptions options);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Blocks until a `shutdown` verb arrives (or `stop` is called from
  /// another thread), then tears the daemon down and returns.
  void wait_for_shutdown();

  /// Programmatic shutdown: stop accepting, finish (`drain`) or cancel
  /// queued work, close every connection, join all threads. Idempotent.
  void stop(bool drain);

  const std::string& socket_path() const { return options_.socket_path; }
  ExperimentService& service() { return service_; }

 private:
  // One client connection: the fd plus a write lock so events emitted from
  // worker threads interleave with verb replies line-atomically.
  struct Connection {
    int fd = -1;
    Mutex write_mu;
    std::atomic<bool> open{true};

    /// Writes `line` + '\n'; ignores failures on a closed/broken peer.
    void write_line(const std::string& line) OWNSIM_EXCLUDES(write_mu);
    /// Marks the connection closed and shuts the socket down. Deliberately
    /// does NOT take write_mu: a sender blocked in send() would deadlock the
    /// shutdown; `open` is atomic and ::shutdown unblocks the sender.
    void close_fd();
  };
  using ConnectionPtr = std::shared_ptr<Connection>;

  void accept_loop();
  void serve_connection(const ConnectionPtr& conn);
  void handle_request(const ConnectionPtr& conn, const std::string& line);
  void request_shutdown(bool drain);
  void log(const std::string& message) const;

  ServerOptions options_;
  ExperimentService service_;

  /// Written by the constructor before the accept thread starts and by
  /// stop() only after that thread is joined; accept_loop works on a local
  /// copy taken at thread start (it must never re-read this member).
  int listen_fd_ = -1;
  std::thread accept_thread_;

  Mutex mu_;
  CondVar shutdown_cv_;
  bool shutdown_requested_ OWNSIM_GUARDED_BY(mu_) = false;
  bool shutdown_drain_ OWNSIM_GUARDED_BY(mu_) = true;
  bool stopped_ OWNSIM_GUARDED_BY(mu_) = false;
  std::vector<ConnectionPtr> connections_ OWNSIM_GUARDED_BY(mu_);
  std::vector<std::thread> connection_threads_ OWNSIM_GUARDED_BY(mu_);
};

}  // namespace ownsim::serve

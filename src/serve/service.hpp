// ExperimentService: the scheduling + memoization core of ownsim_serve.
//
// One service owns an exec::ThreadPool, a priority queue of experiment
// points, and a content-addressed ResultStore. The contract (DESIGN.md §5g):
//
//   * Exactness — a point is identified by experiment_cache_key(config):
//     SHA-256 of (canonical config JSON, code version). Determinism
//     (lint_determinism + deterministic_eq + the kernel bit-identity CI
//     legs) guarantees hash -> one result, so a cache hit serves the exact
//     bytes a fresh run would produce.
//   * Store-before-serve — a completed point is serialized once
//     (experiment_result_json), written to the store, and every future
//     submission of the key is answered from the verified entry with
//     `cache_hit: true`.
//   * In-flight dedupe — submitting a key that is already queued/running
//     attaches the new subscriber to the existing job: N concurrent
//     identical submissions simulate exactly once (stats: inflight_dedup
//     counts the N-1 attachments).
//   * Cancellation & health — every job carries a CancellationSource
//     (merged with the fault watchdog's token when one is armed); cancelled
//     and watchdog-tripped runs are reported but never cached.
//
// Subscribers receive the job lifecycle as JSON events (accepted, started,
// progress, done, cancelled, failed); the socket layer (server.hpp) renders
// them as JSONL. Subscriber callbacks run on service threads and must not
// call back into the service.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "driver/experiment_config.hpp"
#include "exec/thread_pool.hpp"
#include "metrics/bench_json.hpp"
#include "serve/json.hpp"
#include "serve/result_store.hpp"

namespace ownsim::serve {

enum class JobState { kQueued, kRunning, kDone, kCancelled, kFailed };
const char* to_string(JobState state);

struct ServiceOptions {
  std::filesystem::path store_dir;  ///< ResultStore root (required)
  unsigned threads = 0;             ///< workers; 0 = exec::default_threads()
  /// Minimum simulated cycles between streamed progress events per job.
  Cycle progress_interval = 4096;
};

class ExperimentService {
 public:
  /// Receives one JSON event; invoked from service worker threads.
  using EventFn = std::function<void(const Json&)>;

  explicit ExperimentService(ServiceOptions options);
  ~ExperimentService();

  ExperimentService(const ExperimentService&) = delete;
  ExperimentService& operator=(const ExperimentService&) = delete;

  struct SubmitOutcome {
    std::string job_id;
    std::string cache_key;
    bool cache_hit = false;  ///< answered from the store, no simulation
    bool attached = false;   ///< deduped onto an in-flight job
    bool rejected = false;   ///< service is shutting down
  };

  /// Schedules `config` (higher `priority` runs first; FIFO within a
  /// priority). The subscriber receives this job's events, starting with
  /// `accepted`; for a cache hit the `done` event follows immediately.
  SubmitOutcome submit(const ExperimentConfig& config, int priority = 0,
                       EventFn subscriber = {});

  /// Requests cancellation. Queued jobs cancel immediately; running jobs
  /// stop at the next slice boundary. False when unknown or already
  /// terminal.
  bool cancel(const std::string& job_id);

  /// Job status object, or JSON null when the id is unknown.
  Json status(const std::string& job_id) const;
  /// Status summaries of every job this service has seen.
  Json status_all() const;

  /// For a done job: the full `done` event (result payload included).
  /// Otherwise a `pending` event carrying the current state.
  Json result_event(const std::string& job_id) const;

  /// Service-level counters: submissions, cache hits, in-flight dedupe
  /// attachments, queue depth, store stats, hit rate.
  Json stats() const;

  /// Stops accepting submissions; `drain` finishes queued work, otherwise
  /// queued jobs are cancelled and running jobs get their tokens fired.
  /// Blocks until every job is terminal AND its terminal event has been
  /// delivered to subscribers. Idempotent. Must not be called from a
  /// subscriber callback (it would self-deadlock waiting for its own event).
  void shutdown(bool drain) OWNSIM_EXCLUDES(mu_);

  ResultStore& store() { return store_; }
  unsigned threads() const { return pool_.size(); }

 private:
  // Job fields fall in two classes: `id`, `key`, `config`, `priority`,
  // `seq`, `cancel` and the submission timestamps are immutable after the
  // job is published into `jobs_` (safe to read anywhere); every other
  // field is mutable state guarded by ExperimentService::mu_. The analysis
  // cannot attach GUARDED_BY to another object's mutex, so the discipline
  // is enforced by routing all mutable access through OWNSIM_REQUIRES(mu_)
  // helpers and locked scopes in service.cpp.
  struct Job {
    std::string id;
    std::string key;
    ExperimentConfig config;
    int priority = 0;
    std::uint64_t seq = 0;
    JobState state = JobState::kQueued;
    bool cache_hit = false;
    bool shutdown_cancel = false;  ///< cancelled by shutdown, not a client
    std::string error;
    std::string payload;  ///< canonical result JSON once done
    bool watchdog_tripped = false;
    exec::CancellationSource cancel;
    std::vector<EventFn> subscribers;
    int attached_count = 0;
    std::int64_t submitted_unix_ms = 0;
    double submitted_seconds = 0.0;  ///< service clock (WallTimer)
    double finished_seconds = 0.0;
    // Latest progress snapshot (for the status verb).
    std::string phase;
    Cycle total_cycles = 0;
    Cycle last_streamed_cycles = 0;
  };
  using JobPtr = std::shared_ptr<Job>;

  void run_next() OWNSIM_EXCLUDES(mu_);
  /// Marks `job` terminal, delivers its terminal `event` to subscribers,
  /// and only then releases the job from `active_` — so `shutdown` cannot
  /// return while a terminal event is still being delivered.
  void finish_job(const JobPtr& job, JobState state, const Json& event)
      OWNSIM_EXCLUDES(mu_);
  /// Invokes subscribers outside the lock (they may block on sockets).
  void emit(const JobPtr& job, const Json& event) OWNSIM_EXCLUDES(mu_);
  Json done_event_locked(const Job& job) const OWNSIM_REQUIRES(mu_);
  Json job_status_locked(const Job& job) const OWNSIM_REQUIRES(mu_);

  ServiceOptions options_;
  ResultStore store_;
  WallTimer clock_;  ///< service-relative wall time for telemetry fields

  mutable Mutex mu_;
  CondVar idle_cv_;  ///< signalled on job termination
  bool accepting_ OWNSIM_GUARDED_BY(mu_) = true;
  std::uint64_t next_seq_ OWNSIM_GUARDED_BY(mu_) = 0;
  /// By job id (full history).
  std::map<std::string, JobPtr> jobs_ OWNSIM_GUARDED_BY(mu_);
  /// Queued/running, by cache key.
  std::map<std::string, JobPtr> inflight_ OWNSIM_GUARDED_BY(mu_);
  /// {-priority, seq} -> job: begin() is highest priority, FIFO within.
  std::map<std::pair<int, std::uint64_t>, JobPtr> pending_
      OWNSIM_GUARDED_BY(mu_);
  /// Jobs in kQueued or kRunning, or terminal with their final event still
  /// being delivered (see finish_job).
  std::int64_t active_ OWNSIM_GUARDED_BY(mu_) = 0;

  // Counters.
  std::int64_t submitted_ OWNSIM_GUARDED_BY(mu_) = 0;
  std::int64_t cache_hits_ OWNSIM_GUARDED_BY(mu_) = 0;
  std::int64_t inflight_dedup_ OWNSIM_GUARDED_BY(mu_) = 0;
  std::int64_t computed_ OWNSIM_GUARDED_BY(mu_) = 0;
  std::int64_t cancelled_ OWNSIM_GUARDED_BY(mu_) = 0;
  std::int64_t failed_ OWNSIM_GUARDED_BY(mu_) = 0;

  exec::ThreadPool pool_;  ///< last member: destroyed (and drained) first
};

}  // namespace ownsim::serve

#include "serve/service.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/numfmt.hpp"
#include "common/sha256.hpp"

namespace ownsim::serve {
namespace {

/// Wall-clock submission timestamp for job telemetry (events/status only —
/// never part of a cached payload). src/serve is on the determinism-lint
/// wall-clock allowlist for exactly this kind of field.
std::int64_t unix_millis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
  }
  return "unknown";
}

ExperimentService::ExperimentService(ServiceOptions options)
    : options_(std::move(options)),
      store_(options_.store_dir),
      pool_(options_.threads > 0 ? options_.threads
                                 : exec::default_threads()) {}

ExperimentService::~ExperimentService() {
  shutdown(/*drain=*/false);
}

void ExperimentService::emit(const JobPtr& job, const Json& event) {
  std::vector<EventFn> subscribers;
  {
    MutexLock lock(mu_);
    subscribers = job->subscribers;
  }
  for (const EventFn& subscriber : subscribers) {
    if (subscriber) subscriber(event);
  }
}

Json ExperimentService::done_event_locked(const Job& job) const {
  Json::Object o;
  o["event"] = Json("done");
  o["job"] = Json(job.id);
  o["key"] = Json(job.key);
  o["cache_hit"] = Json(job.cache_hit);
  o["result"] = Json::parse(job.payload);
  o["result_sha256"] = Json(sha256_hex(job.payload));
  o["watchdog_tripped"] = Json(job.watchdog_tripped);
  return Json(std::move(o));
}

Json ExperimentService::job_status_locked(const Job& job) const {
  Json::Object o;
  o["event"] = Json("status");
  o["job"] = Json(job.id);
  o["key"] = Json(job.key);
  o["state"] = Json(to_string(job.state));
  o["priority"] = Json(job.priority);
  o["cache_hit"] = Json(job.cache_hit);
  o["attached"] = Json(job.attached_count);
  o["phase"] = Json(job.phase);
  o["total_cycles"] = Json(job.total_cycles);
  o["watchdog_tripped"] = Json(job.watchdog_tripped);
  o["submitted_unix_ms"] = Json(job.submitted_unix_ms);
  if (!job.error.empty()) o["error"] = Json(job.error);
  return Json(std::move(o));
}

ExperimentService::SubmitOutcome ExperimentService::submit(
    const ExperimentConfig& config, int priority, EventFn subscriber) {
  SubmitOutcome outcome;
  outcome.cache_key = experiment_cache_key(config);

  JobPtr job;
  bool need_worker = false;
  bool serve_from_store = false;
  Json done_event;  // built under the lock for the store-hit path
  {
    MutexLock lock(mu_);
    if (!accepting_) {
      outcome.rejected = true;
    } else {
      ++submitted_;
      const auto inflight_it = inflight_.find(outcome.cache_key);
      if (inflight_it != inflight_.end()) {
        // In-flight dedupe: attach to the queued/running job; the point
        // simulates once no matter how many clients ask for it.
        job = inflight_it->second;
        if (subscriber) job->subscribers.push_back(subscriber);
        ++job->attached_count;
        ++inflight_dedup_;
        outcome.job_id = job->id;
        outcome.attached = true;
      } else if (std::optional<std::string> payload =
                     store_.load(outcome.cache_key)) {
        // Completed point: serve the verified bytes, no simulation.
        job = std::make_shared<Job>();
        job->id = "j" + format_uint(++next_seq_);
        job->key = outcome.cache_key;
        job->config = config;
        job->priority = priority;
        job->state = JobState::kDone;
        job->cache_hit = true;
        job->payload = std::move(*payload);
        job->submitted_unix_ms = unix_millis();
        job->submitted_seconds = clock_.seconds();
        job->finished_seconds = job->submitted_seconds;
        if (subscriber) job->subscribers.push_back(subscriber);
        jobs_[job->id] = job;
        ++cache_hits_;
        outcome.job_id = job->id;
        outcome.cache_hit = true;
        serve_from_store = true;
        done_event = done_event_locked(*job);
      } else {
        job = std::make_shared<Job>();
        job->id = "j" + format_uint(++next_seq_);
        job->key = outcome.cache_key;
        job->config = config;
        job->priority = priority;
        job->seq = next_seq_;
        job->submitted_unix_ms = unix_millis();
        job->submitted_seconds = clock_.seconds();
        if (subscriber) job->subscribers.push_back(subscriber);
        jobs_[job->id] = job;
        inflight_[job->key] = job;
        pending_[{-priority, job->seq}] = job;
        ++active_;
        need_worker = true;
        outcome.job_id = job->id;
      }
    }
  }

  if (outcome.rejected) {
    if (subscriber) {
      Json::Object o;
      o["event"] = Json("rejected");
      o["error"] = Json("service is shutting down");
      subscriber(Json(std::move(o)));
    }
    return outcome;
  }

  if (subscriber) {
    Json::Object o;
    o["event"] = Json("accepted");
    o["job"] = Json(outcome.job_id);
    o["key"] = Json(outcome.cache_key);
    o["cache_hit"] = Json(outcome.cache_hit);
    o["attached"] = Json(outcome.attached);
    o["state"] = Json(to_string(serve_from_store ? JobState::kDone
                                                 : JobState::kQueued));
    subscriber(Json(std::move(o)));
    if (serve_from_store) subscriber(done_event);
  }
  if (need_worker) {
    pool_.submit([this] { run_next(); });
  }
  return outcome;
}

void ExperimentService::run_next() {
  JobPtr job;
  {
    MutexLock lock(mu_);
    if (pending_.empty()) return;  // the job this task was queued for was
                                   // cancelled while still pending
    job = pending_.begin()->second;
    pending_.erase(pending_.begin());
    job->state = JobState::kRunning;
    job->phase = "build";
  }
  {
    Json::Object o;
    o["event"] = Json("started");
    o["job"] = Json(job->id);
    o["key"] = Json(job->key);
    o["unix_ms"] = Json(unix_millis());
    emit(job, Json(std::move(o)));
  }

  RunHooks hooks;
  hooks.cancel = job->cancel.token();
  hooks.progress = [this, job](const RunProgress& p) {
    bool fire = false;
    double wall_seconds = 0.0;
    {
      MutexLock lock(mu_);
      const bool phase_change = job->phase != p.phase;
      job->phase = p.phase;
      job->total_cycles = p.total_cycles;
      if (phase_change || p.total_cycles - job->last_streamed_cycles >=
                              options_.progress_interval) {
        job->last_streamed_cycles = p.total_cycles;
        fire = !job->subscribers.empty();
        wall_seconds = clock_.seconds() - job->submitted_seconds;
      }
    }
    if (!fire) return;
    Json::Object o;
    o["event"] = Json("progress");
    o["job"] = Json(job->id);
    o["phase"] = Json(std::string(p.phase));
    o["phase_cycles"] = Json(p.phase_cycles);
    o["total_cycles"] = Json(p.total_cycles);
    o["wall_seconds"] = Json(wall_seconds);
    emit(job, Json(std::move(o)));
  };

  ExperimentResult result;
  try {
    result = run_experiment(job->config, hooks);
  } catch (const std::exception& e) {
    {
      MutexLock lock(mu_);
      job->error = e.what();
    }
    Json::Object o;
    o["event"] = Json("failed");
    o["job"] = Json(job->id);
    o["error"] = Json(std::string(e.what()));
    finish_job(job, JobState::kFailed, Json(std::move(o)));
    return;
  }

  if (result.run.cancelled) {
    // Cancelled or watchdog-aborted runs carry partial state; they are
    // reported but never cached (the store holds only complete results).
    std::string reason;
    {
      MutexLock lock(mu_);
      job->watchdog_tripped = result.watchdog_tripped;
      // shutdown_cancel is written by shutdown() under mu_; read it under
      // the same lock (it used to be read unlocked below — a data race).
      reason = result.watchdog_tripped
                   ? "watchdog"
                   : (job->shutdown_cancel ? "shutdown" : "client_cancel");
    }
    Json::Object o;
    o["event"] = Json("cancelled");
    o["job"] = Json(job->id);
    o["reason"] = Json(reason);
    o["watchdog_tripped"] = Json(result.watchdog_tripped);
    finish_job(job, JobState::kCancelled, Json(std::move(o)));
    return;
  }

  const std::string payload = experiment_result_json(result);
  store_.put(job->key, payload);
  Json done_event;
  {
    MutexLock lock(mu_);
    job->payload = payload;
    job->watchdog_tripped = result.watchdog_tripped;
    ++computed_;
    done_event = done_event_locked(*job);
  }
  finish_job(job, JobState::kDone, done_event);
}

void ExperimentService::finish_job(const JobPtr& job, JobState state,
                                   const Json& event) {
  {
    MutexLock lock(mu_);
    job->state = state;
    job->finished_seconds = clock_.seconds();
    inflight_.erase(job->key);
    if (state == JobState::kCancelled) ++cancelled_;
    if (state == JobState::kFailed) ++failed_;
  }
  // Deliver the terminal event BEFORE releasing the job from active_:
  // shutdown() (and therefore ServeDaemon::stop, which closes the client
  // sockets afterwards) must not return while a subscriber is still being
  // handed this event — doing so used to race socket writes against close().
  emit(job, event);
  MutexLock lock(mu_);
  --active_;
  idle_cv_.notify_all();
}

bool ExperimentService::cancel(const std::string& job_id) {
  JobPtr queued_job;
  {
    MutexLock lock(mu_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return false;
    const JobPtr& job = it->second;
    if (job->state == JobState::kQueued) {
      pending_.erase({-job->priority, job->seq});
      queued_job = job;
    } else if (job->state == JobState::kRunning) {
      job->cancel.request_cancel();
      return true;  // run_next reports the cancellation when it lands
    } else {
      return false;  // already terminal
    }
  }
  Json::Object o;
  o["event"] = Json("cancelled");
  o["job"] = Json(queued_job->id);
  o["reason"] = Json("client_cancel");
  o["watchdog_tripped"] = Json(false);
  finish_job(queued_job, JobState::kCancelled, Json(std::move(o)));
  return true;
}

Json ExperimentService::status(const std::string& job_id) const {
  MutexLock lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return Json(nullptr);
  return job_status_locked(*it->second);
}

Json ExperimentService::status_all() const {
  MutexLock lock(mu_);
  Json::Array jobs;
  jobs.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) {
    jobs.push_back(job_status_locked(*job));
  }
  Json::Object o;
  o["event"] = Json("status");
  o["jobs"] = Json(std::move(jobs));
  return Json(std::move(o));
}

Json ExperimentService::result_event(const std::string& job_id) const {
  MutexLock lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    Json::Object o;
    o["event"] = Json("error");
    o["error"] = Json("unknown job: " + job_id);
    return Json(std::move(o));
  }
  const Job& job = *it->second;
  if (job.state == JobState::kDone) return done_event_locked(job);
  Json::Object o;
  o["event"] = Json("pending");
  o["job"] = Json(job.id);
  o["state"] = Json(to_string(job.state));
  return Json(std::move(o));
}

Json ExperimentService::stats() const {
  MutexLock lock(mu_);
  const ResultStore::Stats store = store_.stats();
  Json::Object s;
  s["event"] = Json("stats");
  s["accepted"] = Json(submitted_);
  s["cache_hits"] = Json(cache_hits_);
  s["inflight_dedup"] = Json(inflight_dedup_);
  s["computed"] = Json(computed_);
  s["cancelled"] = Json(cancelled_);
  s["failed"] = Json(failed_);
  s["queue_depth"] = Json(static_cast<std::int64_t>(pending_.size()));
  s["running"] = Json(active_ - static_cast<std::int64_t>(pending_.size()));
  s["threads"] = Json(static_cast<std::int64_t>(pool_.size()));
  s["code_version"] = Json(code_version());
  // Fraction of submissions served without a fresh simulation (store hits
  // plus in-flight attachments).
  s["hit_rate"] =
      Json(submitted_ > 0
               ? static_cast<double>(cache_hits_ + inflight_dedup_) /
                     static_cast<double>(submitted_)
               : 0.0);
  Json::Object st;
  st["hits"] = Json(store.hits);
  st["misses"] = Json(store.misses);
  st["writes"] = Json(store.writes);
  st["corrupt_rejected"] = Json(store.corrupt_rejected);
  st["root"] = Json(store_.root().string());
  s["store"] = Json(std::move(st));
  return Json(std::move(s));
}

void ExperimentService::shutdown(bool drain) {
  std::vector<JobPtr> to_cancel;
  {
    MutexLock lock(mu_);
    accepting_ = false;
    if (!drain) {
      for (auto& [key, job] : pending_) {
        job->shutdown_cancel = true;
        to_cancel.push_back(job);
      }
      pending_.clear();
      for (auto& [key, job] : inflight_) {
        if (job->state == JobState::kRunning) {
          job->shutdown_cancel = true;
          job->cancel.request_cancel();
        }
      }
    }
  }
  for (const JobPtr& job : to_cancel) {
    Json::Object o;
    o["event"] = Json("cancelled");
    o["job"] = Json(job->id);
    o["reason"] = Json("shutdown");
    o["watchdog_tripped"] = Json(false);
    finish_job(job, JobState::kCancelled, Json(std::move(o)));
  }
  // Waiting on active_ == 0 (not just job states) is what makes the
  // "terminal events delivered before shutdown returns" guarantee hold:
  // finish_job keeps the job in active_ until its event lands.
  MutexLock lock(mu_);
  while (active_ != 0) idle_cv_.wait(lock);
}

}  // namespace ownsim::serve

#include "serve/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/numfmt.hpp"

namespace ownsim::serve {
namespace {

[[noreturn]] void type_error(const char* want) {
  throw std::runtime_error(std::string("Json: value is not ") + want);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::invalid_argument("JSON parse error at byte " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case '"':
        return Json(parse_string());
      case '[':
        return parse_array();
      case '{':
        return parse_object();
      default:
        return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_codepoint(out, parse_hex4()); break;
        default: fail("bad escape character");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return value;
  }

  void append_codepoint(std::string& out, unsigned cp) {
    // Surrogate pair: a high surrogate must be followed by \uDC00..\uDFFF.
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        fail("unpaired high surrogate");
      }
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("bad number");
    const bool integral = token.find_first_of(".eE") == std::string_view::npos;
    if (integral) {
      std::int64_t i = 0;
      const auto r =
          std::from_chars(token.data(), token.data() + token.size(), i);
      if (r.ec == std::errc{} && r.ptr == token.data() + token.size()) {
        return Json(i);
      }
      // Out of int64 range: fall through to double.
    }
    double d = 0.0;
    const auto r =
        std::from_chars(token.data(), token.data() + token.size(), d);
    if (r.ec != std::errc{} || r.ptr != token.data() + token.size()) {
      fail("bad number");
    }
    return Json(d);
  }

  Json parse_array() {
    expect('[');
    Json::Array array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return Json(std::move(array));
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      object[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return Json(std::move(object));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json::Json(std::uint64_t u) {
  constexpr auto kMax = std::numeric_limits<std::int64_t>::max();
  if (u <= static_cast<std::uint64_t>(kMax)) {
    value_ = static_cast<std::int64_t>(u);
  } else {
    // Beyond int64: keep the exact decimal digits by storing... there is no
    // exact slot; seeds are accepted up to 2^63-1 (validated at parse time).
    throw std::invalid_argument("Json: unsigned value exceeds int64 range");
  }
}

bool Json::as_bool() const {
  if (!is_bool()) type_error("a bool");
  return std::get<bool>(value_);
}

std::int64_t Json::as_int() const {
  if (is_int()) return std::get<std::int64_t>(value_);
  if (is_double()) {
    const double d = std::get<double>(value_);
    const auto i = static_cast<std::int64_t>(d);
    if (static_cast<double>(i) == d) return i;
  }
  type_error("an integer");
}

double Json::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
  if (is_double()) return std::get<double>(value_);
  type_error("a number");
}

const std::string& Json::as_string() const {
  if (!is_string()) type_error("a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  if (!is_array()) type_error("an array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  if (!is_object()) type_error("an object");
  return std::get<Object>(value_);
}

Json::Object& Json::as_object() {
  if (!is_object()) type_error("an object");
  return std::get<Object>(value_);
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const Object& object = std::get<Object>(value_);
  const auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = Object{};
  return as_object()[key];
}

void append_json_string(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xf]);
          out.push_back(kHex[c & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void Json::dump_to(std::string& out) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (is_int()) {
    out += format_int(std::get<std::int64_t>(value_));
  } else if (is_double()) {
    out += format_double(std::get<double>(value_));
  } else if (is_string()) {
    append_json_string(out, std::get<std::string>(value_));
  } else if (is_array()) {
    out.push_back('[');
    const Array& array = std::get<Array>(value_);
    for (std::size_t i = 0; i < array.size(); ++i) {
      if (i > 0) out.push_back(',');
      array[i].dump_to(out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    const Object& object = std::get<Object>(value_);
    bool first = true;
    for (const auto& [key, value] : object) {
      if (!first) out.push_back(',');
      first = false;
      append_json_string(out, key);
      out.push_back(':');
      value.dump_to(out);
    }
    out.push_back('}');
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace ownsim::serve

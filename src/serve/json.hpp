// Minimal JSON value, parser, and canonical writer for the serve protocol.
//
// The daemon speaks newline-delimited JSON over a local socket (DESIGN.md
// §5g); this is the framing layer — no external dependency, just the subset
// of JSON the protocol needs: null, bool, 64-bit integers, doubles, strings,
// arrays, objects. Two properties matter beyond "parses JSON":
//
//   * Objects keep their keys in a std::map, so `dump()` is canonical —
//     sorted keys, shortest round-trip number forms (common/numfmt) — and
//     serializing the same value always yields the same bytes.
//   * Numbers distinguish integers from doubles: a seed like 2^63-1 must
//     survive a round trip bit-exactly, which a double-only model cannot do.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace ownsim::serve {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}
  Json(std::int64_t i) : value_(i) {}
  Json(std::uint64_t u);
  Json(double d) : value_(d) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;       ///< also accepts an integral double
  double as_double() const;          ///< any number
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Object& as_object();

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;

  /// Member access on an object (creates the key, like std::map).
  Json& operator[](const std::string& key);

  /// Compact canonical text: sorted object keys, numfmt number forms,
  /// minimal escaping. Same value -> same bytes, always.
  std::string dump() const;
  void dump_to(std::string& out) const;

  /// Parses one JSON value; the whole input must be consumed (trailing
  /// whitespace allowed). Throws std::invalid_argument with position info.
  static Json parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      value_;
};

/// Appends `text` JSON-escaped (quotes included) to `out`.
void append_json_string(std::string& out, std::string_view text);

}  // namespace ownsim::serve

#include "serve/result_store.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/numfmt.hpp"
#include "common/sha256.hpp"

namespace ownsim::serve {
namespace {

constexpr char kMagic[] = "ownsim-result-store v1";

bool is_hex_key(const std::string& key) {
  if (key.size() != 64) return false;
  for (const char c : key) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
  }
  return true;
}

long process_id() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<long>(::getpid());
#else
  return 0;
#endif
}

}  // namespace

ResultStore::ResultStore(std::filesystem::path root) : root_(std::move(root)) {
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);
  if (ec) {
    throw std::runtime_error("ResultStore: cannot create " + root_.string() +
                             ": " + ec.message());
  }
}

std::filesystem::path ResultStore::entry_path(const std::string& key) const {
  if (!is_hex_key(key)) {
    throw std::invalid_argument("ResultStore: key must be 64 lowercase hex");
  }
  return root_ / key.substr(0, 2) / (key + ".result");
}

std::optional<std::string> ResultStore::read_verified(const std::string& key) {
  const std::filesystem::path path = entry_path(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;

  const auto reject = [&]() -> std::optional<std::string> {
    {
      MutexLock lock(mu_);
      ++stats_.corrupt_rejected;
    }
    // Remove the bad entry so the recomputed result can replace it (best
    // effort: a racing valid rewrite just wins the rename later).
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return std::nullopt;
  };

  std::string magic;
  std::string key_label, stored_key;
  std::string sha_label, stored_sha;
  std::string bytes_label;
  std::uint64_t stored_bytes = 0;
  std::string blank;
  if (!std::getline(in, magic) || magic != kMagic) return reject();
  if (!(in >> key_label >> stored_key) || key_label != "key" ||
      stored_key != key) {
    return reject();
  }
  if (!(in >> sha_label >> stored_sha) || sha_label != "sha256" ||
      stored_sha.size() != 64) {
    return reject();
  }
  if (!(in >> bytes_label >> stored_bytes) || bytes_label != "bytes") {
    return reject();
  }
  in.get();  // newline after the bytes count
  if (!std::getline(in, blank) || !blank.empty()) return reject();

  std::string payload(stored_bytes, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(stored_bytes));
  if (static_cast<std::uint64_t>(in.gcount()) != stored_bytes) {
    return reject();  // truncated
  }
  // Trailing garbage beyond the declared length is also corruption.
  if (in.get() != std::ifstream::traits_type::eof()) return reject();
  if (sha256_hex(payload) != stored_sha) return reject();  // bit flip
  return payload;
}

std::optional<std::string> ResultStore::load(const std::string& key) {
  std::optional<std::string> payload = read_verified(key);
  MutexLock lock(mu_);
  if (payload.has_value()) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return payload;
}

void ResultStore::put(const std::string& key, std::string_view payload) {
  const std::filesystem::path path = entry_path(key);
  // An existing valid entry already holds these bytes (determinism); don't
  // churn the file. An invalid one gets overwritten below.
  if (read_verified(key).has_value()) return;

  std::error_code ec;
  std::filesystem::create_directories(path.parent_path(), ec);
  if (ec) {
    throw std::runtime_error("ResultStore: cannot create shard dir: " +
                             ec.message());
  }
  std::uint64_t seq = 0;
  {
    MutexLock lock(mu_);
    seq = ++temp_seq_;
  }
  const std::filesystem::path temp =
      path.parent_path() /
      (key + ".tmp." + format_int(process_id()) + "." + format_uint(seq));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("ResultStore: cannot open temp file " +
                               temp.string());
    }
    out << kMagic << '\n'
        << "key " << key << '\n'
        << "sha256 " << sha256_hex(payload) << '\n'
        << "bytes " << payload.size() << '\n'
        << '\n';
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("ResultStore: short write to " + temp.string());
    }
  }
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(temp, ignored);
    throw std::runtime_error("ResultStore: rename failed: " + ec.message());
  }
  MutexLock lock(mu_);
  ++stats_.writes;
}

ResultStore::Stats ResultStore::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace ownsim::serve

#include "adapt/controller.hpp"

#include <algorithm>
#include <stdexcept>

#include "adapt/variation.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "network/network.hpp"
#include "rf/ber.hpp"
#include "topology/own.hpp"
#include "wireless/channel_alloc.hpp"

namespace ownsim::adapt {
namespace {

// Arming streams for the controller's own protocol (no campaign). Disjoint
// by construction from the variation blocks (adapt/variation.hpp) and far
// from the campaign's 100/100000 blocks so a shared master seed would still
// never alias a stream.
constexpr std::uint64_t kArmChannelBase = 2000000;
constexpr std::uint64_t kArmMediumBase = 3000000;

}  // namespace

AdaptController::AdaptController(Network* network, AdaptConfig config,
                                 const PowerParams& power,
                                 const ChannelEnergyModel* own_channels,
                                 double clock_ghz)
    : network_(network),
      config_(config),
      power_(power),
      own_channels_(own_channels),
      clock_ghz_(clock_ghz) {
  if (network_ == nullptr) {
    throw std::invalid_argument("AdaptController: network must not be null");
  }
  if (config_.refresh < 1) {
    throw std::invalid_argument("AdaptController: refresh must be >= 1");
  }
  if (!(config_.thermal_alpha > 0.0) || config_.thermal_alpha > 1.0) {
    throw std::invalid_argument(
        "AdaptController: thermal_alpha must be in (0, 1]");
  }
  if (config_.thermal_iterations < 1 || config_.temp_coeff_db_per_c < 0.0 ||
      config_.variation_sigma_db < 0.0 || config_.ring_sigma_c < 0.0 ||
      config_.trim_uw_per_c < 0.0) {
    throw std::invalid_argument("AdaptController: bad physical-model knobs");
  }
  if (config_.backoff_exit_db <= config_.backoff_enter_db ||
      config_.realloc_exit_db <= config_.realloc_enter_db ||
      !(config_.backoff_gain_db > 0.0) || config_.max_backoff < 0 ||
      config_.sustain < 1) {
    throw std::invalid_argument(
        "AdaptController: hysteresis bands need exit > enter, gain > 0");
  }
  const NetworkSpec& spec = network_->spec();
  if (spec.router_xy.empty()) {
    throw std::invalid_argument(
        "AdaptController: topology carries no floorplan (router_xy); the "
        "thermal loop needs die positions");
  }

  ThermalMap::Params tp;
  tp.iterations = config_.thermal_iterations;
  thermal_ = ThermalMap(tp);

  const Governor::Params gp{config_.backoff_enter_db, config_.backoff_exit_db,
                            config_.backoff_gain_db, config_.max_backoff,
                            config_.sustain};

  for (std::size_t i = 0; i < spec.links.size(); ++i) {
    const LinkSpec& link = spec.links[i];
    if (link.medium == MediumType::kElectrical) continue;
    Entity e;
    e.is_medium = false;
    e.index = i;
    e.wireless = link.medium == MediumType::kWireless;
    e.variation =
        draw_variation(config_.variation_seed, kStreamLinkBase + i,
                       config_.variation_sigma_db, config_.ring_sigma_c);
    e.routers = {link.src_router, link.dst_router};
    e.governor = Governor(gp);
    e.base_cpf = link.cycles_per_flit;
    if (e.wireless && spec.num_routers() == 64 && link.wireless_channel >= 0) {
      for (const OwnChannel& ch : own256_channels()) {
        if (ch.id == link.wireless_channel) {
          e.src_cluster = ch.src_cluster;
          e.dst_cluster = ch.dst_cluster;
          break;
        }
      }
    }
    entities_.push_back(std::move(e));
  }
  for (std::size_t m = 0; m < spec.media.size(); ++m) {
    const MediumSpec& ms = spec.media[m];
    Entity e;
    e.is_medium = true;
    e.index = m;
    e.wireless = ms.medium == MediumType::kWireless;
    e.variation =
        draw_variation(config_.variation_seed, kStreamMediumBase + m,
                       config_.variation_sigma_db, config_.ring_sigma_c);
    for (const auto& [wr, wp] : ms.writers) e.routers.push_back(wr);
    for (const auto& [rr, rp] : ms.readers) e.routers.push_back(rr);
    e.governor = Governor(gp);
    e.base_cpf = ms.cycles_per_flit;
    entities_.push_back(std::move(e));
  }

  // Re-allocation needs the 5-class degraded route scheme (the driver builds
  // OWN-256 with build_own256_faulted when adapt is on) and the cluster-pair
  // link map; anything else keeps reallocations at 0.
  own256_mode_ = spec.num_routers() == 64 && spec.vc_classes.size() == 5;

  protocol_.ber =
      ber_at_margin(config_.snr_required, config_.base_margin);

  prev_dyn_pj_.assign(static_cast<std::size_t>(spec.num_routers()), 0.0);
  next_refresh_ = config_.refresh;
}

void AdaptController::attach(const fault::Protocol* campaign_protocol) {
  if (attached_) {
    throw std::logic_error("AdaptController::attach: already attached");
  }
  attached_ = true;
  armed_by_campaign_ = campaign_protocol != nullptr;
  if (armed_by_campaign_) {
    // The campaign owns the channels' fault models and RNG streams; share
    // its timing parameters so backoff arithmetic matches what the channels
    // actually charge.
    protocol_ = *campaign_protocol;
  } else {
    obs::Registry& registry = network_->obs();
    for (const Entity& e : entities_) {
      if (!e.wireless) continue;
      Rng rng(derive_seed(config_.variation_seed,
                          (e.is_medium ? kArmMediumBase : kArmChannelBase) +
                              e.index));
      if (e.is_medium) {
        network_->medium_mut(e.index).set_fault_model(&protocol_, rng,
                                                      &registry);
      } else {
        network_->network_channel_mut(e.index).set_fault_model(&protocol_, rng,
                                                               &registry);
      }
    }
  }
  static_w_ = per_router_static_w(*network_, power_);
  obs::Registry& registry = network_->obs();
  obs_refreshes_ = registry.counter("adapt.refreshes");
  obs_backoffs_ = registry.counter("adapt.backoffs");
  obs_reallocations_ = registry.counter("adapt.reallocations");
  obs_trim_uw_ = registry.gauge("adapt.trim_uw");
  network_->engine().add(this);
  request_wake(next_refresh_);
}

void AdaptController::eval(Cycle now) {
  // The lockstep kernel evaluates every component every cycle; only act on
  // refresh boundaries so all kernels see identical mutation cycles.
  if (now < next_refresh_) {
    request_wake(next_refresh_);
    return;
  }
  refresh(now);
  next_refresh_ = now + config_.refresh;
  request_wake(next_refresh_);
}

void AdaptController::refresh(Cycle now) {
  const NetworkSpec& spec = network_->spec();
  const double window_seconds =
      static_cast<double>(now - last_refresh_) / (clock_ghz_ * 1e9);

  // 1. Window power: dynamic energy of this window plus static floor.
  std::vector<double> dyn =
      per_router_dynamic_pj(*network_, power_, own_channels_);
  std::vector<double> window_w(dyn.size());
  for (std::size_t r = 0; r < dyn.size(); ++r) {
    window_w[r] =
        (dyn[r] - prev_dyn_pj_[r]) * units::kPico / window_seconds +
        static_w_[r];
  }
  prev_dyn_pj_ = std::move(dyn);
  last_refresh_ = now;

  // 2. Thermal relaxation of this window's field.
  thermal_.clear();
  thermal_.deposit(spec, window_w);
  const std::vector<double> field = thermal_.field();
  for (double t : field) peak_temp_c_ = std::max(peak_temp_c_, t);

  // 3 + 4. Per-entity margin update and reactions.
  double trim_w = 0.0;
  for (Entity& e : entities_) {
    double sample = 0.0;
    for (RouterId r : e.routers) {
      const auto [x, y] = spec.router_xy[static_cast<std::size_t>(r)];
      sample = std::max(sample, thermal_.value_at(field, x, y));
    }
    e.temp_c = e.temp_primed ? config_.thermal_alpha * sample +
                                   (1.0 - config_.thermal_alpha) * e.temp_c
                             : sample;
    e.temp_primed = true;

    if (e.wireless) {
      const double raw = config_.base_margin.db() -
                         config_.temp_coeff_db_per_c * e.temp_c -
                         e.variation.gain_offset_db;
      step_wireless(e, raw);
    } else if (config_.react) {
      // Photonic trimming: hold the rings on resonance against the local
      // temperature rise plus the ring's process detuning.
      trim_w += config_.trim_uw_per_c *
                std::max(0.0, e.temp_c + e.variation.ring_detune_c) *
                units::kMicro;
    }
  }

  trim_watt_cycles_ += trim_w_current_ * static_cast<double>(now - trim_since_);
  trim_since_ = now;
  trim_w_current_ = trim_w;
  obs_trim_uw_.set(static_cast<std::int64_t>(trim_w / units::kMicro));

  ++refreshes_;
  obs_refreshes_.inc();
}

void AdaptController::step_wireless(Entity& e, double raw_margin_db) {
  if (config_.react) {
    const int before = e.governor.level();
    e.governor.observe(raw_margin_db);
    if (e.governor.level() != before) {
      if (e.governor.level() > before) {
        ++backoffs_;
        obs_backoffs_.inc();
      }
      const int cpf = e.base_cpf * (1 + e.governor.level());
      if (e.is_medium) {
        network_->medium_mut(e.index).set_cycles_per_flit(cpf);
      } else {
        network_->network_channel_mut(e.index).set_cycles_per_flit(cpf);
      }
    }
    step_realloc(e, raw_margin_db);
  }
  const double effective = e.governor.effective_db(raw_margin_db);
  if (!margin_seen_ || effective < min_margin_db_) {
    min_margin_db_ = effective;
    margin_seen_ = true;
  }
  const double ber =
      ber_at_margin(config_.snr_required, Decibels{effective});
  if (e.is_medium) {
    network_->medium_mut(e.index).set_live_ber(ber);
  } else {
    network_->network_channel_mut(e.index).set_live_ber(ber);
  }
}

void AdaptController::step_realloc(Entity& e, double raw_margin_db) {
  // Re-allocation is OWN-256-only (cluster-pair route patching) and yields
  // to an active fault campaign — two independent FaultSets patching the
  // same table would fight.
  if (!own256_mode_ || armed_by_campaign_ || e.src_cluster < 0) return;
  const double margin_at_max =
      raw_margin_db + config_.backoff_gain_db * config_.max_backoff;
  if (!e.reallocated && margin_at_max < config_.realloc_enter_db) {
    e.realloc_high = 0;
    if (++e.realloc_low >= config_.sustain) {
      e.realloc_low = 0;
      FaultSet tentative(realloc_pairs_);
      tentative.fail(e.src_cluster, e.dst_cluster);
      if (tentative.transit_for(e.src_cluster, e.dst_cluster) < 0) {
        return;  // no alive transit: nothing to re-allocate onto
      }
      realloc_pairs_.emplace_back(e.src_cluster, e.dst_cluster);
      faults_ = FaultSet(realloc_pairs_);
      patch_routes();
      e.reallocated = true;
      ++reallocations_;
      obs_reallocations_.inc();
    }
  } else if (e.reallocated && margin_at_max > config_.realloc_exit_db) {
    e.realloc_low = 0;
    if (++e.realloc_high >= config_.sustain) {
      e.realloc_high = 0;
      std::erase(realloc_pairs_,
                 std::make_pair(e.src_cluster, e.dst_cluster));
      faults_ = FaultSet(realloc_pairs_);
      patch_routes();
      e.reallocated = false;
    }
  } else {
    e.realloc_low = 0;
    e.realloc_high = 0;
  }
}

void AdaptController::patch_routes() {
  // Same diff-and-set as the campaign's persistent-failure detector: write
  // back only the entries that changed under the updated fault set.
  const int num_routers = network_->spec().num_routers();
  for (RouterId r = 0; r < num_routers; ++r) {
    for (RouterId d = 0; d < num_routers; ++d) {
      if (d == r) continue;
      const int rc = r / kOwnTilesPerCluster;
      const int dc = d / kOwnTilesPerCluster;
      if (rc != dc && faults_.is_failed(rc, dc) &&
          faults_.transit_for(rc, dc) < 0) {
        continue;  // unrecoverable pair: keep the stale route
      }
      const RouteEntry fresh = own256_fault_route_entry(r, d, faults_);
      const RouteEntry& current =
          network_->spec().route_table[static_cast<std::size_t>(r)]
                                      [static_cast<std::size_t>(d)];
      if (current.out_port != fresh.out_port ||
          current.vc_class != fresh.vc_class) {
        network_->set_route(r, d, fresh);
      }
    }
  }
}

double AdaptController::trim_avg_w() const {
  const Cycle end = network_->engine().now();
  if (end <= 0) return 0.0;
  const double watt_cycles =
      trim_watt_cycles_ +
      trim_w_current_ * static_cast<double>(end - trim_since_);
  return watt_cycles / static_cast<double>(end);
}

Totals AdaptController::totals() const {
  Totals t;
  t.enabled = true;
  t.refreshes = refreshes_;
  t.backoffs = backoffs_;
  t.reallocations = reallocations_;
  t.trim_avg_mw = trim_avg_w() / units::kMilli;
  t.peak_temp_c = peak_temp_c_;
  t.min_margin_db = margin_seen_ ? min_margin_db_ : 0.0;
  return t;
}

}  // namespace ownsim::adapt

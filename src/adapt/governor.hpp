// Hysteresis governor for per-link rate backoff (DESIGN.md §5k).
//
// A pure state machine, one instance per adaptive wireless entity, stepped
// once per physical-state refresh with the entity's *raw* margin (before any
// backoff gain). It decides the backoff level — each level multiplies the
// link's cycles-per-flit by (level + 1) and buys `gain_db` of margin — with
// two defenses against flapping routes/rates when the temperature field
// oscillates around a threshold:
//
//   1. a hysteresis band: a level is entered when the *effective* margin
//      (raw + level * gain) falls below `enter_db`, but only released when
//      the margin that would result after stepping down — raw with one level
//      fewer — clears `exit_db` > `enter_db`;
//   2. a sustain requirement: either transition needs `sustain` consecutive
//      refreshes voting the same way; any refresh that votes otherwise
//      resets the streak.
//
// Pure and deterministic: same margin sequence in, same level sequence out,
// which is what keeps the adaptation loop bit-identical across kernels.
#pragma once

#include <algorithm>

namespace ownsim::adapt {

class Governor {
 public:
  struct Params {
    double enter_db = 1.0;  ///< step up when effective margin below this
    double exit_db = 2.0;   ///< step down when post-release margin above this
    double gain_db = 3.0;   ///< margin bought per backoff level
    int max_level = 2;      ///< deepest backoff (cpf multiplier max_level+1)
    int sustain = 2;        ///< consecutive refreshes before a transition
  };

  Governor() = default;
  explicit Governor(const Params& p) : p_(p) {}

  /// Steps the governor with the raw (backoff-free) margin of this refresh.
  /// Returns true when the backoff level changed.
  bool observe(double raw_margin_db) {
    const double effective = raw_margin_db + p_.gain_db * level_;
    if (effective < p_.enter_db && level_ < p_.max_level) {
      high_streak_ = 0;
      if (++low_streak_ >= p_.sustain) {
        ++level_;
        low_streak_ = 0;
        return true;
      }
      return false;
    }
    // Release only if the margin would still clear the exit threshold after
    // dropping a level — otherwise the very next refresh would re-enter.
    if (level_ > 0 && raw_margin_db + p_.gain_db * (level_ - 1) > p_.exit_db) {
      low_streak_ = 0;
      if (++high_streak_ >= p_.sustain) {
        --level_;
        high_streak_ = 0;
        return true;
      }
      return false;
    }
    low_streak_ = 0;
    high_streak_ = 0;
    return false;
  }

  int level() const { return level_; }
  /// Effective margin at the current level for a given raw margin.
  double effective_db(double raw_margin_db) const {
    return raw_margin_db + p_.gain_db * level_;
  }

 private:
  Params p_;
  int level_ = 0;
  int low_streak_ = 0;
  int high_streak_ = 0;
};

}  // namespace ownsim::adapt

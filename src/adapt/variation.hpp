// Per-die process-variation sampling for the adaptive link layer.
//
// Each physical entity (wireless transceiver pair, photonic ring group) gets
// a fixed offset drawn once per die from `variation_seed`: transceivers a
// gain offset in dB, rings a resonance detuning in degC-equivalent. Offsets
// are approximately Gaussian via the Irwin-Hall construction (sum of 12
// uniforms minus 6 is N(0,1) to within ~1e-2 over ±3 sigma) — good enough
// for a spread model and keeps the repo on the single xoshiro `Rng` scheme
// (no std distributions, see tools/lint_determinism.py).
//
// Stream layout (disjoint from fault::Campaign's 7/100+i/100000+m blocks by
// construction because the streams derive from `variation_seed`, not the
// injector seed; the offsets below are still kept distinct so a shared seed
// would not alias either):
//   kStreamLinkBase + link_index     — per-link transceiver/ring sample
//   kStreamMediumBase + medium_index — per-medium sample
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace ownsim::adapt {

inline constexpr std::uint64_t kStreamLinkBase = 1000;
inline constexpr std::uint64_t kStreamMediumBase = 500000;

/// Standard-normal-ish sample via Irwin-Hall: sum of 12 U(0,1) minus 6.
inline double irwin_hall_gauss(Rng& rng) {
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) sum += rng.uniform();
  return sum - 6.0;
}

/// The fixed per-entity variation sample: a transceiver gain offset (dB,
/// subtracted from the link margin) and a ring detuning (degC-equivalent,
/// added to the trimming load). Drawn once at controller construction.
struct VariationSample {
  double gain_offset_db = 0.0;
  double ring_detune_c = 0.0;
};

/// Draws the sample for one entity. `stream` must be unique per entity
/// (kStreamLinkBase + i or kStreamMediumBase + m).
inline VariationSample draw_variation(std::uint64_t variation_seed,
                                      std::uint64_t stream, double sigma_db,
                                      double ring_sigma_c) {
  Rng rng(derive_seed(variation_seed, stream));
  VariationSample s;
  s.gain_offset_db = sigma_db * irwin_hall_gauss(rng);
  s.ring_detune_c = ring_sigma_c * irwin_hall_gauss(rng);
  return s;
}

}  // namespace ownsim::adapt

// Thermal/variation-driven adaptive link controller (DESIGN.md §5k).
//
// A wake-driven `Clocked`, registered after every network component exactly
// like the fault campaign: its mutations at cycle T happen after all
// component evals of T, identically in every kernel (lockstep, activity,
// parallel — the engine runs late-registered components in the serial lane
// with the workers parked), which is what keeps the closed physical loop
// bit-identical for any thread/partition count.
//
// Every `refresh` cycles it:
//   1. re-attributes the power of the elapsed window to the floorplan from
//      the plain component counters (power/thermal.hpp — NOT obs counters,
//      which are observational by contract and compile out under
//      OWNSIM_OBS=OFF),
//   2. relaxes the ThermalMap and samples the temperature rise at each
//      wireless/photonic entity's endpoints (exponentially smoothed),
//   3. combines temperature with the per-die variation sample into each
//      wireless entity's raw margin and feeds the resulting
//      ber_at_margin(...) into the live CRC/retransmission path
//      (Channel/SharedMedium::set_live_ber),
//   4. when `react`: steps the per-entity hysteresis Governor (rate
//      backoff: cycles_per_flit x (level+1) buys backoff_gain dB/level),
//      re-allocates OWN-256 cluster pairs whose margin collapses even at
//      full backoff (route patching via own256_fault_route_entry, reversible
//      with its own hysteresis band), and accrues photonic ring trimming
//      power, charged into the energy model post-run.
#pragma once

#include <cstdint>
#include <vector>

#include "adapt/config.hpp"
#include "adapt/governor.hpp"
#include "adapt/variation.hpp"
#include "fault/protocol.hpp"
#include "obs/counters.hpp"
#include "power/params.hpp"
#include "power/thermal.hpp"
#include "sim/clocked.hpp"
#include "topology/own_fault.hpp"

namespace ownsim {
class Network;
class ChannelEnergyModel;
}

namespace ownsim::adapt {

class AdaptController final : public Clocked {
 public:
  /// Validates the config against `network`'s spec (a floorplan is required
  /// — the thermal loop is meaningless without one) and draws the per-die
  /// variation sample. `own_channels` may be null (legacy wireless energy).
  AdaptController(Network* network, AdaptConfig config,
                  const PowerParams& power,
                  const ChannelEnergyModel* own_channels, double clock_ghz);

  /// Arms the live-BER path and registers the controller with the engine.
  /// Call once, after all other components (campaign included) registered
  /// and before the first cycle. When a fault campaign is active, pass its
  /// protocol: the campaign has already armed the channels (re-arming would
  /// reset its RNG streams), so the controller only overrides the BER and
  /// leaves re-allocation to the campaign's detector. Without a campaign
  /// (null) the controller arms its own protocol at the static operating
  /// point ber_at_margin(snr_required, base_margin).
  void attach(const fault::Protocol* campaign_protocol);

  void eval(Cycle now) override;
  void commit(Cycle /*now*/) override {}

  /// Purely wake-driven: dormant between refresh cycles.
  bool is_idle() const override { return true; }

  Totals totals() const;

  /// Time-averaged photonic trimming power over the run so far, watts.
  /// Charged into EnergyModel::compute's photonic static bucket post-run.
  double trim_avg_w() const;

 private:
  struct Entity {
    bool is_medium = false;  ///< index into media (else spec links)
    std::size_t index = 0;
    bool wireless = false;  ///< wireless: BER + backoff; photonic: trim
    VariationSample variation;
    std::vector<RouterId> routers;  ///< endpoints, temperature sample points
    double temp_c = 0.0;            ///< smoothed rise
    bool temp_primed = false;
    Governor governor;
    int base_cpf = 1;
    // OWN-256 re-allocation state (point-to-point wireless links only).
    int src_cluster = -1;
    int dst_cluster = -1;
    bool reallocated = false;
    int realloc_low = 0;
    int realloc_high = 0;
  };

  void refresh(Cycle now);
  void step_wireless(Entity& entity, double raw_margin_db);
  void step_realloc(Entity& entity, double raw_margin_db);
  void patch_routes();

  Network* network_;
  AdaptConfig config_;
  PowerParams power_;
  const ChannelEnergyModel* own_channels_;
  double clock_ghz_;

  fault::Protocol protocol_;  ///< own operating point (no campaign)
  bool armed_by_campaign_ = false;

  ThermalMap thermal_;
  std::vector<Entity> entities_;
  std::vector<double> prev_dyn_pj_;
  std::vector<double> static_w_;

  bool own256_mode_ = false;  ///< 5-class OWN-256: re-allocation possible
  std::vector<std::pair<int, int>> realloc_pairs_;
  FaultSet faults_;

  Cycle next_refresh_ = 0;
  Cycle last_refresh_ = 0;

  std::int64_t refreshes_ = 0;
  std::int64_t backoffs_ = 0;
  std::int64_t reallocations_ = 0;
  double peak_temp_c_ = 0.0;
  double min_margin_db_ = 0.0;
  bool margin_seen_ = false;

  // Trimming power, integrated piecewise over refresh windows.
  double trim_watt_cycles_ = 0.0;
  double trim_w_current_ = 0.0;
  Cycle trim_since_ = 0;

  obs::Counter obs_refreshes_;
  obs::Counter obs_backoffs_;
  obs::Counter obs_reallocations_;
  obs::Gauge obs_trim_uw_;

  bool attached_ = false;
};

}  // namespace ownsim::adapt

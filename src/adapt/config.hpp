// Configuration of the thermal/variation-driven adaptive link layer
// (DESIGN.md §5k).
//
// The adaptation loop closes the physical feedback the paper leaves open:
// every `refresh` cycles the controller re-attributes the simulated power to
// the floorplan, relaxes the thermal proxy (power/thermal.hpp), combines the
// temperature field with a per-die variation sample (adapt/variation.hpp)
// into an effective link margin per wireless/photonic channel, and feeds the
// resulting BER into the live reliability protocol (fault/protocol.hpp).
// With `react` set it additionally backs off the modulation rate of
// stressed wireless channels, re-allocates OWN-256 traffic away from
// unrecoverable channels, and charges photonic ring trimming power.
#pragma once

#include <cstdint>

#include "common/quantity.hpp"
#include "common/types.hpp"

namespace ownsim::adapt {

struct AdaptConfig {
  bool enabled = false;
  /// Run reactions (rate backoff, re-allocation, trimming). Off: the physical
  /// state loop still drives the live BER, but nothing adapts — the
  /// "static links under thermal stress" baseline of bench_adapt.
  bool react = true;

  Cycle refresh = 1000;  ///< physical-state refresh period, cycles (>= 1)

  // ---- per-die variation sample (drawn once, adapt/variation.hpp) ---------
  std::uint64_t variation_seed = 1;
  double variation_sigma_db = 0.5;  ///< transceiver gain spread, std dev dB
  double ring_sigma_c = 1.0;        ///< photonic ring detuning spread, degC

  // ---- margin model -------------------------------------------------------
  /// Effective margin of a wireless channel:
  ///   margin_db = base_margin - temp_coeff * dT - variation
  ///               + backoff_gain * backoff_level
  /// and its live BER is ber_at_margin(snr_required, margin).
  Decibels snr_required{17.0};
  Decibels base_margin{2.5};
  double temp_coeff_db_per_c = 0.05;  ///< margin lost per degC of heating
  /// Exponential smoothing of the per-entity temperature samples
  /// (1.0 = no memory, use the latest window only).
  double thermal_alpha = 0.5;
  /// Jacobi iterations of the online thermal relaxation (cheaper than the
  /// offline bench preset; the loop runs every refresh).
  int thermal_iterations = 400;

  // ---- reactions (react == true) ------------------------------------------
  /// Rate backoff: each level multiplies the wireless cycles-per-flit by
  /// (1 + level) and buys `backoff_gain` dB of margin (slower symbols,
  /// more energy per bit at the detector). Hysteresis: a level is entered
  /// below `backoff_enter` and left only above `backoff_exit` (> enter),
  /// each after `sustain` consecutive refreshes (adapt/governor.hpp).
  double backoff_enter_db = 1.0;
  double backoff_exit_db = 2.0;
  double backoff_gain_db = 3.0;
  int max_backoff = 2;
  int sustain = 2;

  /// Re-allocation (OWN-256 point-to-point wireless only): when even the
  /// deepest backoff leaves the margin below `realloc_enter`, the channel's
  /// cluster pair is routed around on the 2-wireless-hop degraded paths
  /// (topology/own_fault.hpp); restored once the margin at full backoff
  /// recovers above `realloc_exit`. Same `sustain` streak rule.
  double realloc_enter_db = 0.0;
  double realloc_exit_db = 1.0;

  /// Photonic trimming: heater power spent keeping rings on resonance,
  /// `trim_uw_per_c` microwatts per degC of detuning (temperature rise plus
  /// the ring's variation offset) per photonic channel; charged into the
  /// photonic laser/tuning bucket of the energy model.
  double trim_uw_per_c = 50.0;
};

/// Deterministic adaptation totals, serialized with the experiment result
/// (driver/simulate.hpp) when the loop is enabled.
struct Totals {
  bool enabled = false;
  std::int64_t refreshes = 0;       ///< physical-state refreshes run
  std::int64_t backoffs = 0;        ///< wireless rate-backoff level increases
  std::int64_t reallocations = 0;   ///< OWN-256 cluster pairs routed around
  double trim_avg_mw = 0.0;         ///< time-averaged photonic trimming power
  double peak_temp_c = 0.0;         ///< hottest thermal cell seen, degC rise
  double min_margin_db = 0.0;       ///< worst effective wireless margin seen
};

}  // namespace ownsim::adapt

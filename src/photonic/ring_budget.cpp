#include "photonic/ring_budget.hpp"

#include <stdexcept>

namespace ownsim {

PhotonicBudget swmr_crossbar_budget(int nodes) {
  if (nodes < 2) throw std::invalid_argument("swmr_crossbar_budget: nodes < 2");
  PhotonicBudget budget;
  // Paper rule: 7 modulator banks per node (64-lambda bundles covering the
  // other nodes), one detector bank per (writer, reader) pair.
  budget.modulators = 7LL * nodes;
  budget.waveguides = budget.modulators / 64;
  budget.detectors = budget.modulators * (nodes - 1);
  return budget;
}

PhotonicBudget mwsr_crossbar_budget(int nodes, int lambdas_per_waveguide,
                                    int bundle_width) {
  if (nodes < 2 || lambdas_per_waveguide < 1 || bundle_width < 1) {
    throw std::invalid_argument("mwsr_crossbar_budget: bad arguments");
  }
  PhotonicBudget budget;
  budget.waveguides = static_cast<std::int64_t>(nodes) * bundle_width;
  // Every writer modulates every other home bundle; the home router detects
  // all lambdas of its own bundle.
  budget.modulators = static_cast<std::int64_t>(nodes) * (nodes - 1) *
                      lambdas_per_waveguide * bundle_width;
  budget.detectors = static_cast<std::int64_t>(nodes) *
                     lambdas_per_waveguide * bundle_width;
  return budget;
}

PhotonicBudget own_photonic_budget(int clusters, int lambdas_per_waveguide) {
  if (clusters < 1) throw std::invalid_argument("own_photonic_budget");
  const PhotonicBudget cluster = mwsr_crossbar_budget(16, lambdas_per_waveguide);
  PhotonicBudget budget;
  budget.waveguides = cluster.waveguides * clusters;
  budget.modulators = cluster.modulators * clusters;
  budget.detectors = cluster.detectors * clusters;
  return budget;
}

}  // namespace ownsim

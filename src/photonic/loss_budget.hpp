// Optical loss budget and off-chip laser power (paper §III.A / [12]).
//
// The off-chip laser pumps a power waveguide; a star splitter distributes it
// to the home waveguides; each data waveguide accumulates coupler, splitter,
// propagation, ring-through and drop losses. The laser must deliver the
// receiver sensitivity after the worst-case loss, divided by the wall-plug
// efficiency — this static power is what makes photonic links' energy/bit
// effectively distance-independent but never zero.
#pragma once

namespace ownsim {

struct OpticalLossParams {
  double coupler_db = 1.0;          ///< fiber-to-chip coupling
  double splitter_db_per_stage = 0.5;
  double waveguide_db_per_cm = 0.5;
  double ring_through_db = 0.01;    ///< per ring passed while off-resonance
  double drop_db = 0.5;             ///< resonant drop into the detector
  double receiver_sensitivity_dbm = -17.0;
  double laser_wallplug_efficiency = 0.3;
};

class LossBudget {
 public:
  LossBudget() : LossBudget(OpticalLossParams{}) {}
  explicit LossBudget(OpticalLossParams params);

  /// Worst-case path loss for a waveguide of `length_cm` passing
  /// `rings_passed` off-resonance rings, fed through a `splitter_stages`-deep
  /// star splitter, dB.
  double path_loss_db(double length_cm, int rings_passed,
                      int splitter_stages) const;

  /// Required laser output per wavelength for that path, W.
  double laser_power_per_lambda_w(double length_cm, int rings_passed,
                                  int splitter_stages) const;

  /// Wall-plug laser power for a full waveguide bundle, W.
  double laser_wallplug_w(double length_cm, int rings_passed,
                          int splitter_stages, int lambdas) const;

  const OpticalLossParams& params() const { return params_; }

 private:
  OpticalLossParams params_;
};

}  // namespace ownsim

// Optical loss budget and off-chip laser power (paper §III.A / [12]).
//
// The off-chip laser pumps a power waveguide; a star splitter distributes it
// to the home waveguides; each data waveguide accumulates coupler, splitter,
// propagation, ring-through and drop losses. The laser must deliver the
// receiver sensitivity after the worst-case loss, divided by the wall-plug
// efficiency — this static power is what makes photonic links' energy/bit
// effectively distance-independent but never zero.
//
// Losses are typed log-domain `Decibels` (propagation loss as dB per unit
// length), sensitivities `DbmPower`, laser outputs linear `Power`.
#pragma once

#include "common/quantity.hpp"

namespace ownsim {

struct OpticalLossParams {
  Decibels coupler{1.0};  ///< fiber-to-chip coupling
  Decibels splitter_per_stage{0.5};
  DecibelsPerLength waveguide_loss = Decibels{0.5} / 1.0_cm;
  Decibels ring_through{0.01};  ///< per ring passed while off-resonance
  Decibels drop{0.5};           ///< resonant drop into the detector
  DbmPower receiver_sensitivity{-17.0};
  double laser_wallplug_efficiency = 0.3;
};

class LossBudget {
 public:
  LossBudget() : LossBudget(OpticalLossParams{}) {}
  explicit LossBudget(OpticalLossParams params);

  /// Worst-case path loss for a waveguide of `length` passing
  /// `rings_passed` off-resonance rings, fed through a `splitter_stages`-deep
  /// star splitter.
  Decibels path_loss(Length length, int rings_passed,
                     int splitter_stages) const;

  /// Required laser output per wavelength for that path.
  Power laser_power_per_lambda(Length length, int rings_passed,
                               int splitter_stages) const;

  /// Wall-plug laser power for a full waveguide bundle.
  Power laser_wallplug(Length length, int rings_passed, int splitter_stages,
                       int lambdas) const;

  const OpticalLossParams& params() const { return params_; }

 private:
  OpticalLossParams params_;
};

}  // namespace ownsim

// Photonic component budgets (paper §I and §V.B).
//
// Reproduces the paper's scalability argument numerically: a 64x64 SWMR
// photonic crossbar needs 448 modulators, 7 waveguides and 28,224
// photodetectors; at 1024x1024 that becomes 7,168 modulators, 112 waveguides
// and ~7.3M detectors — "prohibitive and not easily scalable to mitigate
// thermal variations". The generative rule behind those numbers:
//
//   waveguides_per_node = ceil((N-1)/64)  (64-lambda DWDM bundles; 7 at N=64
//                         because 63 destinations pack into 7 x 9... the
//                         paper's own count is 7 per node at N=64, i.e.
//                         waveguides = 7N/64 bundles chip-wide)
//   modulators = 7N,  detectors = modulators * (N-1)
//
// We expose both the paper-anchored SWMR crossbar counts and the budgets of
// the structures we actually simulate (OWN's per-cluster MWSR crossbars and
// the OptXB token crossbar).
#pragma once

#include <cstdint>

namespace ownsim {

struct PhotonicBudget {
  std::int64_t waveguides = 0;
  std::int64_t modulators = 0;
  std::int64_t detectors = 0;
  std::int64_t rings() const { return modulators + detectors; }
};

/// SWMR single-crossbar budget for `nodes` x `nodes` (paper §I numbers).
PhotonicBudget swmr_crossbar_budget(int nodes);

/// MWSR token crossbar over `nodes` concentrated routers with
/// `lambdas_per_waveguide` DWDM channels per waveguide and `bundle_width`
/// parallel waveguides per home (Corona uses 4-wide bundles; with 64 routers
/// x 64 lambda x 4 this passes the paper's "more than a million ring
/// resonators" mark, §V.B).
PhotonicBudget mwsr_crossbar_budget(int nodes, int lambdas_per_waveguide,
                                    int bundle_width = 1);

/// OWN photonic budget: `clusters` independent 16-tile MWSR crossbars with
/// `lambdas_per_waveguide` wavelengths per home waveguide.
PhotonicBudget own_photonic_budget(int clusters, int lambdas_per_waveguide);

}  // namespace ownsim

#include "photonic/loss_budget.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace ownsim {

LossBudget::LossBudget(OpticalLossParams params) : params_(params) {
  if (params_.laser_wallplug_efficiency <= 0 ||
      params_.laser_wallplug_efficiency > 1) {
    throw std::invalid_argument("LossBudget: bad wall-plug efficiency");
  }
}

Decibels LossBudget::path_loss(Length length, int rings_passed,
                               int splitter_stages) const {
  if (length.value() < 0 || rings_passed < 0 || splitter_stages < 0) {
    throw std::invalid_argument("LossBudget: negative path element");
  }
  return params_.coupler +
         params_.splitter_per_stage * static_cast<double>(splitter_stages) +
         params_.waveguide_loss * length +
         params_.ring_through * static_cast<double>(rings_passed) +
         params_.drop;
}

Power LossBudget::laser_power_per_lambda(Length length, int rings_passed,
                                         int splitter_stages) const {
  const DbmPower required = params_.receiver_sensitivity +
                            path_loss(length, rings_passed, splitter_stages);
  return units::to_watts(required);
}

Power LossBudget::laser_wallplug(Length length, int rings_passed,
                                 int splitter_stages, int lambdas) const {
  return laser_power_per_lambda(length, rings_passed, splitter_stages) *
         static_cast<double>(lambdas) / params_.laser_wallplug_efficiency;
}

}  // namespace ownsim

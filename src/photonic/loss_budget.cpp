#include "photonic/loss_budget.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace ownsim {

LossBudget::LossBudget(OpticalLossParams params) : params_(params) {
  if (params_.laser_wallplug_efficiency <= 0 ||
      params_.laser_wallplug_efficiency > 1) {
    throw std::invalid_argument("LossBudget: bad wall-plug efficiency");
  }
}

double LossBudget::path_loss_db(double length_cm, int rings_passed,
                                int splitter_stages) const {
  if (length_cm < 0 || rings_passed < 0 || splitter_stages < 0) {
    throw std::invalid_argument("LossBudget: negative path element");
  }
  return params_.coupler_db +
         params_.splitter_db_per_stage * splitter_stages +
         params_.waveguide_db_per_cm * length_cm +
         params_.ring_through_db * rings_passed + params_.drop_db;
}

double LossBudget::laser_power_per_lambda_w(double length_cm, int rings_passed,
                                            int splitter_stages) const {
  const double required_dbm =
      params_.receiver_sensitivity_dbm +
      path_loss_db(length_cm, rings_passed, splitter_stages);
  return units::dbm_to_watts(required_dbm);
}

double LossBudget::laser_wallplug_w(double length_cm, int rings_passed,
                                    int splitter_stages, int lambdas) const {
  return laser_power_per_lambda_w(length_cm, rings_passed, splitter_stages) *
         lambdas / params_.laser_wallplug_efficiency;
}

}  // namespace ownsim

// Synthetic traffic patterns (§V: uniform, bit-reversal, matrix transpose,
// perfect shuffle, neighbor) plus the usual extensions used for ablations
// (bit complement, tornado, hotspot).
//
// Permutation patterns operate on the node id's bit representation and
// require power-of-two node counts, matching the paper's 256/1024-core
// evaluations.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace ownsim {

enum class PatternKind {
  kUniform,        ///< UN: independent uniform-random destination
  kBitReversal,    ///< BR: address bits reversed
  kTranspose,      ///< MT: matrix transpose (halves of the address swapped)
  kShuffle,        ///< PS: perfect shuffle (rotate address left by one)
  kNeighbor,       ///< NBR: fixed offset to the next node
  kBitComplement,  ///< extension: all address bits inverted
  kTornado,        ///< extension: half-way around offset
  kHotspot,        ///< extension: 20% of traffic to node 0, rest uniform
};

/// Parses "uniform"/"UN", "bitrev"/"BR", "transpose"/"MT", "shuffle"/"PS",
/// "neighbor"/"NBR", "complement", "tornado", "hotspot".
/// Throws std::invalid_argument on unknown names.
PatternKind parse_pattern(const std::string& name);

const char* to_string(PatternKind kind);

/// All patterns evaluated in the paper's Fig 7(a).
std::vector<PatternKind> paper_patterns();

/// Destination generator for a fixed pattern over `num_nodes` nodes.
class TrafficPattern {
 public:
  /// Throws std::invalid_argument when a bit-permutation pattern is asked
  /// for a non-power-of-two node count.
  TrafficPattern(PatternKind kind, int num_nodes);

  PatternKind kind() const { return kind_; }
  int num_nodes() const { return num_nodes_; }

  /// Destination for a packet from `src`. `rng` is only consulted by the
  /// stochastic patterns (uniform, hotspot).
  NodeId dest(NodeId src, Rng& rng) const;

  /// True when dest() ignores the RNG (fixed permutation).
  bool deterministic() const;

 private:
  PatternKind kind_;
  int num_nodes_;
  int addr_bits_;
};

}  // namespace ownsim

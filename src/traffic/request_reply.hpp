// Closed-loop request/reply traffic (coherence-style).
//
// Real multicore traffic is dominated by short requests answered by data
// replies (the memory-hierarchy movement the paper's introduction
// motivates). This generator models it: each node issues single-flit
// requests per a Bernoulli process; when a request ejects at its target,
// the target immediately issues a multi-flit reply back to the requester.
// Round-trip time (request creation -> reply ejection) is tracked per
// transaction.
//
// Protocol-deadlock note: replies are generated into the NIC's unbounded
// source queues and requesters never block on them, so the classic
// request-reply dependency cycle cannot form; no extra message-class VCs
// are needed at the network level.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "network/network.hpp"
#include "sim/clocked.hpp"
#include "traffic/patterns.hpp"

namespace ownsim {

class RequestReplyTraffic final : public Clocked {
 public:
  struct Params {
    double request_rate = 0.001;  ///< requests/node/cycle
    int request_flits = 1;
    int reply_flits = 4;
    std::uint32_t flit_bits = 128;
    std::uint64_t seed = 1;
  };

  RequestReplyTraffic(Network* network, TrafficPattern pattern, Params params);

  void eval(Cycle now) override;
  void commit(Cycle /*now*/) override {}
  // Explicitly never idle — closed-loop traffic draws request Bernoullis
  // every cycle, so the component stays in the active set and the whole run
  // executes in lockstep order (conservative, bit-identical). Spelled out
  // (rather than inheriting the base default) so the eval/is_idle pairing
  // the quiescence contract demands is visible and checkable.
  bool is_idle() const override { return false; }

  /// Pauses/resumes request generation (replies still flow for outstanding
  /// requests).
  void set_enabled(bool enabled) { enabled_ = enabled; }

  std::int64_t requests_issued() const { return requests_issued_; }
  std::int64_t replies_issued() const { return replies_issued_; }
  std::int64_t transactions_completed() const {
    return transactions_completed_;
  }
  std::int64_t outstanding() const {
    return requests_issued_ - transactions_completed_;
  }

  /// Round-trip time statistics (cycles, request creation -> reply ejection).
  const RunningStat& round_trip() const { return round_trip_; }

 private:
  void on_eject(const PacketRecord& record, Cycle now);

  Network* network_;
  TrafficPattern pattern_;
  Params params_;
  std::vector<Rng> rngs_;
  bool enabled_ = true;

  /// request packet id -> creation cycle (while the request is in flight).
  std::unordered_map<PacketId, Cycle> pending_requests_;
  /// reply packet id -> originating request's creation cycle.
  std::unordered_map<PacketId, Cycle> pending_replies_;

  std::int64_t requests_issued_ = 0;
  std::int64_t replies_issued_ = 0;
  std::int64_t transactions_completed_ = 0;
  RunningStat round_trip_;
};

}  // namespace ownsim

#include "traffic/injector.hpp"

#include <stdexcept>

namespace ownsim {

Injector::Injector(Network* network, TrafficPattern pattern, Params params)
    : network_(network), pattern_(pattern), params_(params) {
  if (network_ == nullptr) throw std::invalid_argument("Injector: null network");
  if (params_.rate < 0.0 || params_.packet_flits < 1) {
    throw std::invalid_argument("Injector: bad rate/packet size");
  }
  if (pattern_.num_nodes() != network_->spec().num_nodes) {
    throw std::invalid_argument("Injector: pattern/network size mismatch");
  }
  rngs_.reserve(static_cast<std::size_t>(network_->spec().num_nodes));
  for (NodeId n = 0; n < network_->spec().num_nodes; ++n) {
    rngs_.emplace_back(params_.master_seed, static_cast<std::uint64_t>(n));
  }
  obs::Registry& registry = network_->obs();
  obs_packets_offered_ = registry.counter("injector.packets_offered");
  obs_flits_offered_ = registry.counter("injector.flits_offered");
}

void Injector::eval(Cycle now) {
  if (!enabled_) return;
  const double p = params_.rate / params_.packet_flits;
  const int num_nodes = network_->spec().num_nodes;
  const bool measured = now >= measure_begin_ && now < measure_end_;
  const bool multipath = network_->spec().has_alt_routing();
  for (NodeId src = 0; src < num_nodes; ++src) {
    Rng& rng = rngs_[static_cast<std::size_t>(src)];
    if (!rng.chance(p)) continue;
    const NodeId dst = pattern_.dest(src, rng);
    // O1TURN-style topologies balance load by flipping a fair coin between
    // the two routing functions per packet.
    const bool use_alt = multipath && rng.chance(0.5);
    network_->nic().enqueue_packet(
        src, dst, network_->router_of(dst), params_.packet_flits,
        params_.flit_bits, network_->injection_vc_class(src, dst, use_alt),
        now, measured);
    ++packets_offered_;
    if (measured) ++measured_offered_;
    obs_packets_offered_.inc();
    obs_flits_offered_.add(params_.packet_flits);
  }
}

}  // namespace ownsim

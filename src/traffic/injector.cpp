#include "traffic/injector.hpp"

#include <algorithm>
#include <stdexcept>

namespace ownsim {

Injector::Injector(Network* network, TrafficPattern pattern, Params params)
    : network_(network), pattern_(pattern), params_(params) {
  if (network_ == nullptr) throw std::invalid_argument("Injector: null network");
  if (params_.rate < 0.0 || params_.packet_flits < 1) {
    throw std::invalid_argument("Injector: bad rate/packet size");
  }
  if (pattern_.num_nodes() != network_->spec().num_nodes) {
    throw std::invalid_argument("Injector: pattern/network size mismatch");
  }
  rngs_.reserve(static_cast<std::size_t>(network_->spec().num_nodes));
  for (NodeId n = 0; n < network_->spec().num_nodes; ++n) {
    rngs_.emplace_back(params_.master_seed, static_cast<std::uint64_t>(n));
  }
  lookahead_.resize(static_cast<std::size_t>(network_->spec().num_nodes));
  obs::Registry& registry = network_->obs();
  obs_packets_offered_ = registry.counter("injector.packets_offered");
  obs_flits_offered_ = registry.counter("injector.flits_offered");
}

void Injector::advance(NodeLookahead& node, Rng& rng, double p) {
  // One draw per cycle, in cycle order — the exact draws the per-cycle
  // Bernoulli loop would have made on this node's private stream.
  const Cycle limit = node.drawn_until + kLookaheadCycles;
  for (Cycle c = node.drawn_until; c < limit; ++c) {
    if (rng.chance(p)) {
      node.next_fire = c;
      node.drawn_until = c + 1;
      return;
    }
  }
  node.next_fire = kNeverCycle;
  node.drawn_until = limit;
}

void Injector::eval(Cycle now) {
  if (!enabled_) return;
  const double p = params_.rate / params_.packet_flits;
  const int num_nodes = network_->spec().num_nodes;
  const bool measured = now >= measure_begin_ && now < measure_end_;
  const bool multipath = network_->spec().has_alt_routing();
  if (!armed_) {
    armed_ = true;
    for (auto& node : lookahead_) {
      node.next_fire = kNeverCycle;
      node.drawn_until = now;
    }
  }
  Cycle next_event = kNeverCycle;
  for (NodeId src = 0; src < num_nodes; ++src) {
    auto& node = lookahead_[static_cast<std::size_t>(src)];
    Rng& rng = rngs_[static_cast<std::size_t>(src)];
    if (node.next_fire != kNeverCycle && node.next_fire < now) {
      // Fire missed while disabled: restart this node's process at `now`
      // (see header — the paused stream position is not rewound).
      node.next_fire = kNeverCycle;
      node.drawn_until = now;
    }
    while (node.next_fire == kNeverCycle && node.drawn_until <= now) {
      advance(node, rng, p);
    }
    if (node.next_fire == now) {
      const NodeId dst = pattern_.dest(src, rng);
      // O1TURN-style topologies balance load by flipping a fair coin between
      // the two routing functions per packet.
      const bool use_alt = multipath && rng.chance(0.5);
      network_->nic().enqueue_packet(
          src, dst, network_->router_of(dst), params_.packet_flits,
          params_.flit_bits, network_->injection_vc_class(src, dst, use_alt),
          now, measured);
      ++packets_offered_;
      if (measured) ++measured_offered_;
      obs_packets_offered_.inc();
      obs_flits_offered_.add(params_.packet_flits);
      // The gap draws for now+1.. resume only after the fire's dest/alt
      // draws, preserving the per-node stream order.
      node.next_fire = kNeverCycle;
      node.drawn_until = now + 1;
      advance(node, rng, p);
    }
    next_event = std::min(next_event, node.next_fire != kNeverCycle
                                          ? node.next_fire
                                          : node.drawn_until);
  }
  if (next_event != kNeverCycle) request_wake(next_event);
}

}  // namespace ownsim

// Open-loop Bernoulli packet injector.
//
// Each node independently generates a packet with probability
// rate / packet_flits per cycle (so the offered load equals `rate` in
// flits/node/cycle), destined per the configured `TrafficPattern`.
// Self-addressed packets from deterministic permutations are delivered
// through the local router like any other traffic.
//
// Activity-driven kernel: instead of drawing one Bernoulli per node per
// cycle, each node *pre-draws* its stream until the next success and records
// that cycle (`next_fire`). The draws consumed are exactly the ones the
// per-cycle loop would have made, in the same per-node order (node streams
// are independent and nothing else reads them), so results — including RNG-
// sensitive destinations and alt-route coins — are bit-identical to the
// lockstep loop. Between fires the injector sleeps; a wakeup is posted for
// the earliest next event across nodes. Pre-drawing is capped at
// `kLookaheadCycles` per batch so a (near-)zero rate cannot spin forever;
// exhausted batches resume at the next wakeup. Re-enabling after
// `set_enabled(false)` restarts each node's Bernoulli process at the current
// cycle (the paused stream position is not rewound); no current caller
// re-enables an injector mid-run.
//
// Packets created inside the measurement window are tagged `measured`; the
// injector also tracks how many such packets exist so the driver can detect
// full drain of the measured population.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "network/network.hpp"
#include "obs/counters.hpp"
#include "sim/clocked.hpp"
#include "traffic/patterns.hpp"

namespace ownsim {

class Injector final : public Clocked {
 public:
  struct Params {
    double rate = 0.1;        ///< offered load, flits/node/cycle
    int packet_flits = 4;
    std::uint32_t flit_bits = 128;
    /// Master seed of this injector: per-node streams are derived from it
    /// via the SplitMix64 stream scheme. Parallel sweeps derive a distinct
    /// master seed per load point (see `SweepOptions::master_seed`) so no
    /// two points ever share a stream.
    std::uint64_t master_seed = 1;
  };

  /// Bernoulli pre-draws per node per batch; bounds the work a single eval
  /// can do when the success probability is (near) zero.
  static constexpr Cycle kLookaheadCycles = 4096;

  Injector(Network* network, TrafficPattern pattern, Params params);

  /// Packets created while now is in [begin, end) are tagged as measured.
  void set_measure_window(Cycle begin, Cycle end) {
    measure_begin_ = begin;
    measure_end_ = end;
  }

  /// Pauses/resumes packet generation (e.g. to let the network fully drain).
  void set_enabled(bool enabled) {
    enabled_ = enabled;
    // Re-arm: the engine clamps the wake up to the current cycle.
    if (enabled_) request_wake(0);
  }
  bool enabled() const { return enabled_; }

  void eval(Cycle now) override;
  void commit(Cycle /*now*/) override {}

  /// Always dormant between events: every eval (re)posts a wakeup for the
  /// earliest pre-drawn fire (or batch continuation) across nodes, and
  /// `set_enabled(true)` posts one after a pause.
  bool is_idle() const override { return true; }

  std::int64_t packets_offered() const { return packets_offered_; }
  std::int64_t measured_offered() const { return measured_offered_; }
  const Params& params() const { return params_; }

 private:
  /// Per-node lookahead. Exactly one of these holds:
  ///  * next_fire != kNeverCycle — a success was pre-drawn for that cycle;
  ///    draws are consumed through next_fire inclusive.
  ///  * next_fire == kNeverCycle — draws are consumed for every cycle in
  ///    [.., drawn_until) without a success; drawing resumes at drawn_until.
  struct NodeLookahead {
    Cycle next_fire = kNeverCycle;
    Cycle drawn_until = 0;
  };

  /// Pre-draws node `src`'s stream from `drawn_until` until a success or
  /// `kLookaheadCycles` draws, updating the lookahead state.
  void advance(NodeLookahead& node, Rng& rng, double p);

  Network* network_;
  TrafficPattern pattern_;
  Params params_;
  std::vector<Rng> rngs_;  ///< one decorrelated stream per node
  std::vector<NodeLookahead> lookahead_;
  bool armed_ = false;  ///< lookahead initialized at the first enabled eval
  Cycle measure_begin_ = kNeverCycle;
  Cycle measure_end_ = kNeverCycle;
  bool enabled_ = true;
  std::int64_t packets_offered_ = 0;
  std::int64_t measured_offered_ = 0;
  obs::Counter obs_packets_offered_;
  obs::Counter obs_flits_offered_;
};

}  // namespace ownsim

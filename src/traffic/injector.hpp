// Open-loop Bernoulli packet injector.
//
// Each node independently generates a packet with probability
// rate / packet_flits per cycle (so the offered load equals `rate` in
// flits/node/cycle), destined per the configured `TrafficPattern`.
// Self-addressed packets from deterministic permutations are delivered
// through the local router like any other traffic.
//
// Packets created inside the measurement window are tagged `measured`; the
// injector also tracks how many such packets exist so the driver can detect
// full drain of the measured population.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "network/network.hpp"
#include "obs/counters.hpp"
#include "sim/clocked.hpp"
#include "traffic/patterns.hpp"

namespace ownsim {

class Injector final : public Clocked {
 public:
  struct Params {
    double rate = 0.1;        ///< offered load, flits/node/cycle
    int packet_flits = 4;
    std::uint32_t flit_bits = 128;
    /// Master seed of this injector: per-node streams are derived from it
    /// via the SplitMix64 stream scheme. Parallel sweeps derive a distinct
    /// master seed per load point (see `SweepOptions::master_seed`) so no
    /// two points ever share a stream.
    std::uint64_t master_seed = 1;
  };

  Injector(Network* network, TrafficPattern pattern, Params params);

  /// Packets created while now is in [begin, end) are tagged as measured.
  void set_measure_window(Cycle begin, Cycle end) {
    measure_begin_ = begin;
    measure_end_ = end;
  }

  /// Pauses/resumes packet generation (e.g. to let the network fully drain).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void eval(Cycle now) override;
  void commit(Cycle /*now*/) override {}

  std::int64_t packets_offered() const { return packets_offered_; }
  std::int64_t measured_offered() const { return measured_offered_; }
  const Params& params() const { return params_; }

 private:
  Network* network_;
  TrafficPattern pattern_;
  Params params_;
  std::vector<Rng> rngs_;  ///< one decorrelated stream per node
  Cycle measure_begin_ = kNeverCycle;
  Cycle measure_end_ = kNeverCycle;
  bool enabled_ = true;
  std::int64_t packets_offered_ = 0;
  std::int64_t measured_offered_ = 0;
  obs::Counter obs_packets_offered_;
  obs::Counter obs_flits_offered_;
};

}  // namespace ownsim

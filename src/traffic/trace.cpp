#include "traffic/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ownsim {

Trace::Trace(std::vector<TraceRecord> records) : records_(std::move(records)) {
  for (std::size_t i = 1; i < records_.size(); ++i) {
    if (records_[i].cycle < records_[i - 1].cycle) {
      throw std::runtime_error("Trace: records must be cycle-ordered");
    }
  }
}

Trace Trace::parse(std::istream& in) {
  std::vector<TraceRecord> records;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    TraceRecord rec;
    if (!(fields >> rec.cycle)) continue;  // blank/comment line
    if (!(fields >> rec.src >> rec.dst >> rec.size_flits)) {
      throw std::runtime_error("Trace: malformed line " +
                               std::to_string(line_no));
    }
    if (rec.size_flits < 1 || rec.src < 0 || rec.dst < 0 || rec.cycle < 0) {
      throw std::runtime_error("Trace: invalid record at line " +
                               std::to_string(line_no));
    }
    records.push_back(rec);
  }
  return Trace(std::move(records));
}

Trace Trace::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Trace: cannot open " + path);
  return parse(in);
}

void Trace::save(std::ostream& out) const {
  out << "# cycle src dst size_flits\n";
  for (const TraceRecord& rec : records_) {
    out << rec.cycle << ' ' << rec.src << ' ' << rec.dst << ' '
        << rec.size_flits << '\n';
  }
}

NodeId Trace::max_node() const {
  NodeId max = 0;
  for (const TraceRecord& rec : records_) {
    max = std::max({max, rec.src, rec.dst});
  }
  return records_.empty() ? 0 : max + 1;
}

std::int64_t Trace::total_flits() const {
  std::int64_t total = 0;
  for (const TraceRecord& rec : records_) total += rec.size_flits;
  return total;
}

Trace generate_bursty_trace(const BurstyTraceParams& params) {
  if (params.num_nodes < 2 || params.duration < 1) {
    throw std::invalid_argument("generate_bursty_trace: bad parameters");
  }
  Rng rng(params.seed);
  std::vector<bool> on(static_cast<std::size_t>(params.num_nodes), false);
  std::vector<TraceRecord> records;
  for (Cycle t = 0; t < params.duration; ++t) {
    for (NodeId n = 0; n < params.num_nodes; ++n) {
      // Phase transitions first, then emission while ON.
      if (on[n]) {
        if (rng.chance(params.p_on_to_off)) on[n] = false;
      } else if (rng.chance(params.p_off_to_on)) {
        on[n] = true;
      }
      if (!on[n] || !rng.chance(params.on_rate)) continue;
      TraceRecord rec;
      rec.cycle = t;
      rec.src = n;
      if (rng.chance(params.locality)) {
        // Neighborhood destination (wrap around the node space).
        const auto offset = static_cast<NodeId>(
            1 + rng.below(static_cast<std::uint64_t>(params.neighborhood)));
        rec.dst = (n + offset) % params.num_nodes;
      } else {
        rec.dst = static_cast<NodeId>(
            rng.below(static_cast<std::uint64_t>(params.num_nodes)));
      }
      rec.size_flits = params.packet_flits;
      records.push_back(rec);
    }
  }
  return Trace(std::move(records));
}

TraceInjector::TraceInjector(Network* network, Trace trace,
                             std::uint32_t flit_bits, bool loop)
    : network_(network),
      trace_(std::move(trace)),
      flit_bits_(flit_bits),
      loop_(loop) {
  if (network_ == nullptr) {
    throw std::invalid_argument("TraceInjector: null network");
  }
  if (trace_.max_node() > network_->spec().num_nodes) {
    throw std::invalid_argument("TraceInjector: trace references more nodes "
                                "than the network has");
  }
  if (loop_ && trace_.empty()) {
    throw std::invalid_argument("TraceInjector: cannot loop an empty trace");
  }
}

void TraceInjector::eval(Cycle now) {
  const bool measured = now >= measure_begin_ && now < measure_end_;
  while (true) {
    if (next_ >= trace_.size()) {
      if (!loop_) return;  // exhausted: stay dormant (no wakeup)
      next_ = 0;
      epoch_offset_ += trace_.duration();
    }
    const TraceRecord& rec = trace_.records()[next_];
    if (rec.cycle + epoch_offset_ > now) {
      request_wake(rec.cycle + epoch_offset_);
      return;
    }
    network_->nic().enqueue_packet(
        rec.src, rec.dst, network_->router_of(rec.dst), rec.size_flits,
        flit_bits_, network_->injection_vc_class(rec.src, rec.dst), now,
        measured);
    ++packets_offered_;
    if (measured) ++measured_offered_;
    ++next_;
  }
}

}  // namespace ownsim

#include "traffic/patterns.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <stdexcept>

namespace ownsim {
namespace {

bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

NodeId reverse_bits(NodeId x, int bits) {
  NodeId out = 0;
  for (int i = 0; i < bits; ++i) {
    out = (out << 1) | ((x >> i) & 1);
  }
  return out;
}

}  // namespace

PatternKind parse_pattern(const std::string& name) {
  std::string s = name;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (s == "uniform" || s == "un" || s == "random") return PatternKind::kUniform;
  if (s == "bitrev" || s == "br" || s == "bit-reversal" || s == "bitreversal") {
    return PatternKind::kBitReversal;
  }
  if (s == "transpose" || s == "mt") return PatternKind::kTranspose;
  if (s == "shuffle" || s == "ps") return PatternKind::kShuffle;
  if (s == "neighbor" || s == "nbr") return PatternKind::kNeighbor;
  if (s == "complement" || s == "bc") return PatternKind::kBitComplement;
  if (s == "tornado") return PatternKind::kTornado;
  if (s == "hotspot") return PatternKind::kHotspot;
  throw std::invalid_argument("unknown traffic pattern: " + name);
}

const char* to_string(PatternKind kind) {
  switch (kind) {
    case PatternKind::kUniform: return "UN";
    case PatternKind::kBitReversal: return "BR";
    case PatternKind::kTranspose: return "MT";
    case PatternKind::kShuffle: return "PS";
    case PatternKind::kNeighbor: return "NBR";
    case PatternKind::kBitComplement: return "BC";
    case PatternKind::kTornado: return "TOR";
    case PatternKind::kHotspot: return "HOT";
  }
  return "?";
}

std::vector<PatternKind> paper_patterns() {
  return {PatternKind::kUniform, PatternKind::kBitReversal,
          PatternKind::kTranspose, PatternKind::kShuffle,
          PatternKind::kNeighbor};
}

TrafficPattern::TrafficPattern(PatternKind kind, int num_nodes)
    : kind_(kind), num_nodes_(num_nodes) {
  if (num_nodes < 2) {
    throw std::invalid_argument("TrafficPattern: need >= 2 nodes");
  }
  addr_bits_ = std::bit_width(static_cast<unsigned>(num_nodes)) - 1;
  const bool needs_pow2 = kind == PatternKind::kBitReversal ||
                          kind == PatternKind::kTranspose ||
                          kind == PatternKind::kShuffle ||
                          kind == PatternKind::kBitComplement;
  if (needs_pow2 && !is_pow2(num_nodes)) {
    throw std::invalid_argument(
        "TrafficPattern: bit-permutation patterns need power-of-two nodes");
  }
}

bool TrafficPattern::deterministic() const {
  return kind_ != PatternKind::kUniform && kind_ != PatternKind::kHotspot;
}

NodeId TrafficPattern::dest(NodeId src, Rng& rng) const {
  const int n = num_nodes_;
  switch (kind_) {
    case PatternKind::kUniform:
      return static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    case PatternKind::kBitReversal:
      return reverse_bits(src, addr_bits_);
    case PatternKind::kTranspose: {
      // Swap the address halves: (row, col) -> (col, row).
      const int half = addr_bits_ / 2;
      const int high_bits = addr_bits_ - half;
      const NodeId low = src & ((1 << half) - 1);
      const NodeId high = src >> half;
      return (low << high_bits) | high;
    }
    case PatternKind::kShuffle: {
      const NodeId msb = (src >> (addr_bits_ - 1)) & 1;
      return ((src << 1) | msb) & (n - 1);
    }
    case PatternKind::kNeighbor:
      return (src + 1) % n;
    case PatternKind::kBitComplement:
      return (~src) & (n - 1);
    case PatternKind::kTornado:
      return (src + n / 2 - 1 + n) % n;
    case PatternKind::kHotspot:
      if (rng.chance(0.2)) return 0;
      return static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
  }
  throw std::logic_error("TrafficPattern: unreachable");
}

}  // namespace ownsim

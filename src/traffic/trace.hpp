// Trace-driven traffic (paper §V: "In the future, we will evaluate with
// real workloads").
//
// A trace is an ordered list of (cycle, src, dst, size_flits) records. The
// `TraceInjector` replays one into the NIC at the recorded cycles; traces
// can be loaded from a simple text format, written back, or synthesized by
// `generate_bursty_trace`, an on/off Markov-modulated process that mimics
// application phase behavior (bursts of correlated traffic separated by
// quiet periods) — the closest synthetic stand-in for the real workloads
// the paper defers to future work.
//
// Text format: one record per line, `cycle src dst size_flits`,
// '#' comments, cycles non-decreasing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "network/network.hpp"
#include "sim/clocked.hpp"

namespace ownsim {

struct TraceRecord {
  Cycle cycle = 0;
  NodeId src = 0;
  NodeId dst = 0;
  int size_flits = 1;
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<TraceRecord> records);

  /// Parses the text format; throws std::runtime_error on malformed input
  /// or decreasing cycles.
  static Trace parse(std::istream& in);
  static Trace load(const std::string& path);

  void save(std::ostream& out) const;

  const std::vector<TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  Cycle duration() const {
    return records_.empty() ? 0 : records_.back().cycle + 1;
  }

  /// Largest node id referenced + 1.
  NodeId max_node() const;

  /// Total flits in the trace.
  std::int64_t total_flits() const;

 private:
  std::vector<TraceRecord> records_;  // sorted by cycle
};

struct BurstyTraceParams {
  int num_nodes = 64;
  Cycle duration = 10000;
  double on_rate = 0.02;       ///< packets/node/cycle while a node is ON
  double p_on_to_off = 0.008;  ///< per-cycle phase-exit probabilities
  double p_off_to_on = 0.002;  ///< (mean ON ~125 cycles, OFF ~500)
  int packet_flits = 4;
  /// Fraction of packets sent to a node-local "neighborhood" (spatial
  /// locality typical of real workloads); the rest are uniform.
  double locality = 0.6;
  int neighborhood = 8;
  std::uint64_t seed = 1;
};

/// Synthesizes a Markov-modulated on/off trace (see header comment).
Trace generate_bursty_trace(const BurstyTraceParams& params);

/// Replays a trace into a network's NIC. Records at cycle t are enqueued
/// when the engine reaches t; replay can loop for steady-state studies.
class TraceInjector final : public Clocked {
 public:
  TraceInjector(Network* network, Trace trace, std::uint32_t flit_bits = 128,
                bool loop = false);

  /// Packets created inside [begin, end) are tagged as measured.
  void set_measure_window(Cycle begin, Cycle end) {
    measure_begin_ = begin;
    measure_end_ = end;
  }

  void eval(Cycle now) override;
  void commit(Cycle /*now*/) override {}

  /// Always dormant between records: the schedule is known ahead of time, so
  /// every eval posts a wakeup for the next record's cycle (none once a
  /// non-looping trace is exhausted).
  bool is_idle() const override { return true; }

  std::int64_t packets_offered() const { return packets_offered_; }
  std::int64_t measured_offered() const { return measured_offered_; }
  bool finished() const { return !loop_ && next_ >= trace_.size(); }

 private:
  Network* network_;
  Trace trace_;
  std::uint32_t flit_bits_;
  bool loop_;
  std::size_t next_ = 0;
  Cycle epoch_offset_ = 0;  ///< accumulated duration across loop iterations
  std::int64_t packets_offered_ = 0;
  std::int64_t measured_offered_ = 0;
  Cycle measure_begin_ = kNeverCycle;
  Cycle measure_end_ = kNeverCycle;
};

}  // namespace ownsim

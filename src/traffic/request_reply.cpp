#include "traffic/request_reply.hpp"

#include <stdexcept>

namespace ownsim {

RequestReplyTraffic::RequestReplyTraffic(Network* network,
                                         TrafficPattern pattern, Params params)
    : network_(network), pattern_(pattern), params_(params) {
  if (network_ == nullptr) {
    throw std::invalid_argument("RequestReplyTraffic: null network");
  }
  if (pattern_.num_nodes() != network_->spec().num_nodes) {
    throw std::invalid_argument("RequestReplyTraffic: size mismatch");
  }
  if (params_.request_rate < 0 || params_.request_flits < 1 ||
      params_.reply_flits < 1) {
    throw std::invalid_argument("RequestReplyTraffic: bad parameters");
  }
  rngs_.reserve(static_cast<std::size_t>(network_->spec().num_nodes));
  for (NodeId n = 0; n < network_->spec().num_nodes; ++n) {
    rngs_.emplace_back(params_.seed, static_cast<std::uint64_t>(n) + 7919);
  }
  network_->nic().set_eject_callback(
      [this](const PacketRecord& record, Cycle now) { on_eject(record, now); });
}

void RequestReplyTraffic::eval(Cycle now) {
  if (!enabled_) return;
  for (NodeId src = 0; src < network_->spec().num_nodes; ++src) {
    Rng& rng = rngs_[static_cast<std::size_t>(src)];
    if (!rng.chance(params_.request_rate)) continue;
    const NodeId dst = pattern_.dest(src, rng);
    const PacketId id = network_->nic().enqueue_packet(
        src, dst, network_->router_of(dst), params_.request_flits,
        params_.flit_bits, network_->injection_vc_class(src, dst), now,
        /*measured=*/false);
    pending_requests_.emplace(id, now);
    ++requests_issued_;
  }
}

void RequestReplyTraffic::on_eject(const PacketRecord& record, Cycle now) {
  if (auto request = pending_requests_.find(record.packet);
      request != pending_requests_.end()) {
    // A request arrived: the target answers with a data reply. The NIC
    // callback fires inside its own eval, so enqueueing here is safe (the
    // reply is picked up starting next cycle).
    const Cycle created = request->second;
    pending_requests_.erase(request);
    const NodeId replier = record.dst;
    const NodeId requester = record.src;
    const PacketId reply_id = network_->nic().enqueue_packet(
        replier, requester, network_->router_of(requester),
        params_.reply_flits, params_.flit_bits,
        network_->injection_vc_class(replier, requester), now,
        /*measured=*/false);
    pending_replies_.emplace(reply_id, created);
    ++replies_issued_;
  } else if (auto reply = pending_replies_.find(record.packet);
             reply != pending_replies_.end()) {
    round_trip_.add(static_cast<double>(now - reply->second));
    pending_replies_.erase(reply);
    ++transactions_completed_;
  }
}

}  // namespace ownsim
